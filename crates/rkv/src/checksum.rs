//! CRC32C (Castagnoli) — the end-to-end chunk digest.
//!
//! A small, dependency-free, table-driven implementation (slice-by-8, the
//! classic software technique hardware-less memcached/iSCSI stacks use).
//! It is deliberately independent of `simkit`: checksums describe *data*,
//! not simulated time, and the same digests must be computable from test
//! code, the wire layer, and the burst-buffer core alike.
//!
//! The burst buffer computes `crc32c_pair(key, data)` when a chunk is
//! sealed and carries it in the KV value's `flags` word and the file's
//! chunk-CRC manifest; covering the *key* as well as the payload means a
//! value that lands under the wrong key (e.g. a corrupted key byte in
//! transit) also fails verification instead of reading back "cleanly".

/// The Castagnoli generator polynomial, reflected.
const POLY: u32 = 0x82f6_3b78;

/// 8 × 256 lookup tables for slice-by-8.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// Incremental CRC32C state for digesting discontiguous input.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

impl Crc32c {
    /// Fresh digest state.
    pub fn new() -> Crc32c {
        Crc32c { state: !0 }
    }

    /// Fold `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for w in &mut chunks {
            let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ crc;
            let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
            crc = TABLES[7][(lo & 0xff) as usize]
                ^ TABLES[6][((lo >> 8) & 0xff) as usize]
                ^ TABLES[5][((lo >> 16) & 0xff) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xff) as usize]
                ^ TABLES[2][((hi >> 8) & 0xff) as usize]
                ^ TABLES[1][((hi >> 16) & 0xff) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the digest.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// CRC32C of a single buffer.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finalize()
}

/// CRC32C of the logical concatenation `a || b` without concatenating.
pub fn crc32c_pair(a: &[u8], b: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(a);
    c.update(b);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn pair_equals_concatenation() {
        let a = b"chunk-key:f1:0";
        let b: Vec<u8> = (0..10_000).map(|i| (i * 31 % 251) as u8).collect();
        let mut whole = a.to_vec();
        whole.extend_from_slice(&b);
        assert_eq!(crc32c_pair(a, &b), crc32c(&whole));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data: Vec<u8> = (0..4096).map(|i| (i % 255) as u8).collect();
        let clean = crc32c(&data);
        for at in [0usize, 1, 7, 8, 9, 4095] {
            data[at] ^= 0x10;
            assert_ne!(crc32c(&data), clean, "flip at {at} undetected");
            data[at] ^= 0x10;
        }
        assert_eq!(crc32c(&data), clean);
    }

    #[test]
    fn key_coverage_distinguishes_keys() {
        let data = vec![42u8; 1024];
        assert_ne!(crc32c_pair(b"f1:0", &data), crc32c_pair(b"f1:1", &data));
    }
}
