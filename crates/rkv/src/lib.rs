//! # rkv — RDMA-Memcached
//!
//! A reimplementation of the paper's key-value substrate: a
//! memcached-semantics store (slab allocation, per-class LRU, lazy expiry,
//! CAS) served over a hybrid RDMA transport and addressed by clients
//! through ketama consistent hashing.
//!
//! Layering:
//! * [`slab`] / [`store`] — the storage engine (real data structures,
//!   host-thread-safe via [`sharded`]);
//! * [`hash`] — FNV-1a and the consistent-hash ring;
//! * [`proto`] — the binary wire protocol;
//! * [`server`] — a per-node KV server process on the simulated fabric;
//! * [`client`] — connection-caching client with the hybrid protocol:
//!   small payloads inline in SEND, large payloads moved one-sided
//!   (server RDMA-READs SET payloads from client memory, RDMA-WRITEs GET
//!   payloads into client memory), mirroring OSU RDMA-Memcached.

#![warn(missing_docs)]

pub mod checksum;
pub mod client;
pub mod hash;
pub mod hotness;
pub mod membership;
pub mod proto;
pub mod server;
pub mod sharded;
pub mod slab;
pub mod store;

pub use checksum::{crc32c, crc32c_pair};
pub use client::{KvClient, KvClientConfig, OpKind, OpRecord};
pub use hash::{fnv1a, HashRing};
pub use membership::Membership;
pub use server::{KvServer, KvServerConfig};
pub use sharded::ShardedKv;
pub use slab::{SlabConfig, SlabFull};
pub use store::{KvError, KvStats, KvStore, Value};
