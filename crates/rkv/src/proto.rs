//! Binary wire protocol between KV clients and servers.
//!
//! Requests and responses are length-delimited binary frames carried in
//! SEND/RECV messages. Payloads travel either *inline* in the frame (small
//! values) or *one-sided*: the frame carries a [`WireBuf`] descriptor and
//! the peer moves the payload with RDMA READ/WRITE — the hybrid scheme of
//! OSU RDMA-Memcached that keeps large transfers zero-copy and round-trip
//! free.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use netsim::NodeId;
use rdmasim::{RKey, RemoteBuf};

use crate::store::KvStats;

/// Malformed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoError(pub &'static str);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}
impl std::error::Error for ProtoError {}

/// A registered-buffer descriptor in wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireBuf {
    /// Owning node.
    pub node: u32,
    /// Remote key.
    pub rkey: u32,
    /// Buffer length.
    pub len: u64,
}

impl From<RemoteBuf> for WireBuf {
    fn from(r: RemoteBuf) -> Self {
        WireBuf {
            node: r.node.0,
            rkey: r.rkey.0,
            len: r.len,
        }
    }
}

impl From<WireBuf> for RemoteBuf {
    fn from(w: WireBuf) -> Self {
        RemoteBuf {
            node: NodeId(w.node),
            rkey: RKey(w.rkey),
            len: w.len,
        }
    }
}

/// How a SET payload reaches the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Carrier {
    /// Payload bytes travel inside this frame.
    Inline(Bytes),
    /// Payload sits in the client's registered buffer; the server RDMA-READs
    /// `len` bytes from it.
    Remote {
        /// Client-side registered buffer.
        src: WireBuf,
        /// Payload length within the buffer.
        len: u32,
    },
}

impl Carrier {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Carrier::Inline(b) => b.len(),
            Carrier::Remote { len, .. } => *len as usize,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Client → server operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch a value. `dst`, when present, is a client buffer the server
    /// may RDMA-WRITE large values into.
    Get {
        /// Item key.
        key: Bytes,
        /// Optional one-sided landing buffer.
        dst: Option<WireBuf>,
    },
    /// Unconditional store.
    Set {
        /// Item key.
        key: Bytes,
        /// Opaque flags.
        flags: u32,
        /// Absolute expiry (ns; 0 = never).
        expire_at: u64,
        /// Payload carrier.
        value: Carrier,
    },
    /// Store if absent.
    Add {
        /// Item key.
        key: Bytes,
        /// Opaque flags.
        flags: u32,
        /// Absolute expiry (ns; 0 = never).
        expire_at: u64,
        /// Payload carrier.
        value: Carrier,
    },
    /// Store if present.
    Replace {
        /// Item key.
        key: Bytes,
        /// Opaque flags.
        flags: u32,
        /// Absolute expiry (ns; 0 = never).
        expire_at: u64,
        /// Payload carrier.
        value: Carrier,
    },
    /// Compare-and-swap.
    Cas {
        /// Item key.
        key: Bytes,
        /// Opaque flags.
        flags: u32,
        /// Absolute expiry (ns; 0 = never).
        expire_at: u64,
        /// Expected CAS token.
        cas: u64,
        /// Payload carrier.
        value: Carrier,
    },
    /// Remove a key.
    Delete {
        /// Item key.
        key: Bytes,
    },
    /// Update expiry.
    Touch {
        /// Item key.
        key: Bytes,
        /// New absolute expiry.
        expire_at: u64,
    },
    /// Fetch server counters.
    Stats,
    /// Add to a numeric value.
    Incr {
        /// Item key.
        key: Bytes,
        /// Amount to add.
        delta: u64,
    },
    /// Subtract from a numeric value (floored at zero).
    Decr {
        /// Item key.
        key: Bytes,
        /// Amount to subtract.
        delta: u64,
    },
    /// Concatenate after the live value.
    Append {
        /// Item key.
        key: Bytes,
        /// Bytes to append.
        data: Bytes,
    },
    /// Concatenate before the live value.
    Prepend {
        /// Item key.
        key: Bytes,
        /// Bytes to prepend.
        data: Bytes,
    },
    /// Fetch several keys in one round trip (single-server batch; the
    /// client groups keys by ring owner).
    MultiGet {
        /// Keys, in reply order.
        keys: Vec<Bytes>,
    },
    /// Exempt a key from LRU eviction (burst-buffer unflushed chunks).
    Pin {
        /// Item key.
        key: Bytes,
    },
    /// Lift a [`Request::Pin`], making the key evictable again.
    Unpin {
        /// Item key.
        key: Bytes,
    },
    /// Tag this connection with a tenant id: all subsequent ops on the
    /// connection are accounted to (and admission-controlled as) this
    /// tenant. Sent once after connect by tenanted clients; tenant 0
    /// clients never send it.
    SetTenant {
        /// Tenant id (0 clears the tag).
        tenant: u32,
    },
}

/// Server → client results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET hit with the value inline.
    Value {
        /// Payload bytes.
        data: Bytes,
        /// Stored flags.
        flags: u32,
        /// CAS token.
        cas: u64,
    },
    /// GET hit; the server RDMA-WROTE `len` bytes into the client's `dst`.
    ValueWritten {
        /// Bytes written into the client buffer.
        len: u32,
        /// Stored flags.
        flags: u32,
        /// CAS token.
        cas: u64,
    },
    /// Store succeeded.
    Stored {
        /// New CAS token.
        cas: u64,
    },
    /// Delete/touch succeeded.
    Ok,
    /// Key absent.
    NotFound,
    /// `add` on an existing key.
    Exists,
    /// CAS token mismatch.
    CasMismatch,
    /// Item over the size limit.
    TooLarge,
    /// Store out of memory.
    OutOfMemory,
    /// Server-side RDMA failure while moving a one-sided payload.
    TransferFailed,
    /// Counters snapshot.
    Stats(KvStats),
    /// New numeric value after incr/decr.
    Counter {
        /// The value after the operation.
        value: u64,
    },
    /// incr/decr on a non-numeric value.
    NonNumeric,
    /// Batched GET results, in request-key order (`None` = miss).
    MultiValues {
        /// Per-key results.
        values: Vec<Option<(Bytes, u32, u64)>>,
    },
    /// Store rejected: the payload digest did not match the declared
    /// checksum (`flags`). The value was NOT stored; the client should
    /// re-send from its good copy.
    BadDigest,
    /// Op rejected by per-tenant token-bucket admission: the connection's
    /// tenant is over its configured rate. Not retryable at the transport
    /// layer — the caller decides whether to back off.
    Throttled,
}

const TAG_GET: u8 = 1;
const TAG_SET: u8 = 2;
const TAG_ADD: u8 = 3;
const TAG_REPLACE: u8 = 4;
const TAG_CAS: u8 = 5;
const TAG_DELETE: u8 = 6;
const TAG_TOUCH: u8 = 7;
const TAG_STATS: u8 = 8;
const TAG_INCR: u8 = 9;
const TAG_DECR: u8 = 10;
const TAG_APPEND: u8 = 11;
const TAG_PREPEND: u8 = 12;
const TAG_MULTI_GET: u8 = 13;
const TAG_PIN: u8 = 14;
const TAG_UNPIN: u8 = 15;
const TAG_SET_TENANT: u8 = 16;

const RTAG_VALUE: u8 = 1;
const RTAG_VALUE_WRITTEN: u8 = 2;
const RTAG_STORED: u8 = 3;
const RTAG_OK: u8 = 4;
const RTAG_NOT_FOUND: u8 = 5;
const RTAG_EXISTS: u8 = 6;
const RTAG_CAS_MISMATCH: u8 = 7;
const RTAG_TOO_LARGE: u8 = 8;
const RTAG_OOM: u8 = 9;
const RTAG_TRANSFER_FAILED: u8 = 10;
const RTAG_STATS: u8 = 11;
const RTAG_COUNTER: u8 = 12;
const RTAG_NON_NUMERIC: u8 = 13;
const RTAG_MULTI_VALUES: u8 = 14;
const RTAG_BAD_DIGEST: u8 = 15;
const RTAG_THROTTLED: u8 = 16;

const CARRIER_INLINE: u8 = 0;
const CARRIER_REMOTE: u8 = 1;

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes, ProtoError> {
    if buf.remaining() < 4 {
        return Err(ProtoError("truncated length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(ProtoError("truncated bytes"));
    }
    Ok(buf.copy_to_bytes(len))
}

fn put_wirebuf(buf: &mut BytesMut, w: &WireBuf) {
    buf.put_u32_le(w.node);
    buf.put_u32_le(w.rkey);
    buf.put_u64_le(w.len);
}

fn get_wirebuf(buf: &mut Bytes) -> Result<WireBuf, ProtoError> {
    if buf.remaining() < 16 {
        return Err(ProtoError("truncated wirebuf"));
    }
    Ok(WireBuf {
        node: buf.get_u32_le(),
        rkey: buf.get_u32_le(),
        len: buf.get_u64_le(),
    })
}

fn put_carrier(buf: &mut BytesMut, c: &Carrier) {
    match c {
        Carrier::Inline(b) => {
            buf.put_u8(CARRIER_INLINE);
            put_bytes(buf, b);
        }
        Carrier::Remote { src, len } => {
            buf.put_u8(CARRIER_REMOTE);
            put_wirebuf(buf, src);
            buf.put_u32_le(*len);
        }
    }
}

fn get_carrier(buf: &mut Bytes) -> Result<Carrier, ProtoError> {
    if buf.remaining() < 1 {
        return Err(ProtoError("truncated carrier tag"));
    }
    match buf.get_u8() {
        CARRIER_INLINE => Ok(Carrier::Inline(get_bytes(buf)?)),
        CARRIER_REMOTE => {
            let src = get_wirebuf(buf)?;
            if buf.remaining() < 4 {
                return Err(ProtoError("truncated carrier len"));
            }
            Ok(Carrier::Remote {
                src,
                len: buf.get_u32_le(),
            })
        }
        _ => Err(ProtoError("bad carrier tag")),
    }
}

fn put_store_fields(buf: &mut BytesMut, key: &Bytes, flags: u32, expire_at: u64, value: &Carrier) {
    put_bytes(buf, key);
    buf.put_u32_le(flags);
    buf.put_u64_le(expire_at);
    put_carrier(buf, value);
}

type StoreFields = (Bytes, u32, u64, Carrier);

fn get_store_fields(buf: &mut Bytes) -> Result<StoreFields, ProtoError> {
    let key = get_bytes(buf)?;
    if buf.remaining() < 12 {
        return Err(ProtoError("truncated store fields"));
    }
    let flags = buf.get_u32_le();
    let expire_at = buf.get_u64_le();
    let value = get_carrier(buf)?;
    Ok((key, flags, expire_at, value))
}

impl Request {
    /// Encode to a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            Request::Get { key, dst } => {
                buf.put_u8(TAG_GET);
                put_bytes(&mut buf, key);
                match dst {
                    None => buf.put_u8(0),
                    Some(w) => {
                        buf.put_u8(1);
                        put_wirebuf(&mut buf, w);
                    }
                }
            }
            Request::Set {
                key,
                flags,
                expire_at,
                value,
            } => {
                buf.put_u8(TAG_SET);
                put_store_fields(&mut buf, key, *flags, *expire_at, value);
            }
            Request::Add {
                key,
                flags,
                expire_at,
                value,
            } => {
                buf.put_u8(TAG_ADD);
                put_store_fields(&mut buf, key, *flags, *expire_at, value);
            }
            Request::Replace {
                key,
                flags,
                expire_at,
                value,
            } => {
                buf.put_u8(TAG_REPLACE);
                put_store_fields(&mut buf, key, *flags, *expire_at, value);
            }
            Request::Cas {
                key,
                flags,
                expire_at,
                cas,
                value,
            } => {
                buf.put_u8(TAG_CAS);
                put_bytes(&mut buf, key);
                buf.put_u32_le(*flags);
                buf.put_u64_le(*expire_at);
                buf.put_u64_le(*cas);
                put_carrier(&mut buf, value);
            }
            Request::Delete { key } => {
                buf.put_u8(TAG_DELETE);
                put_bytes(&mut buf, key);
            }
            Request::Touch { key, expire_at } => {
                buf.put_u8(TAG_TOUCH);
                put_bytes(&mut buf, key);
                buf.put_u64_le(*expire_at);
            }
            Request::Stats => buf.put_u8(TAG_STATS),
            Request::Incr { key, delta } => {
                buf.put_u8(TAG_INCR);
                put_bytes(&mut buf, key);
                buf.put_u64_le(*delta);
            }
            Request::Decr { key, delta } => {
                buf.put_u8(TAG_DECR);
                put_bytes(&mut buf, key);
                buf.put_u64_le(*delta);
            }
            Request::Append { key, data } => {
                buf.put_u8(TAG_APPEND);
                put_bytes(&mut buf, key);
                put_bytes(&mut buf, data);
            }
            Request::Prepend { key, data } => {
                buf.put_u8(TAG_PREPEND);
                put_bytes(&mut buf, key);
                put_bytes(&mut buf, data);
            }
            Request::MultiGet { keys } => {
                buf.put_u8(TAG_MULTI_GET);
                buf.put_u32_le(keys.len() as u32);
                for k in keys {
                    put_bytes(&mut buf, k);
                }
            }
            Request::Pin { key } => {
                buf.put_u8(TAG_PIN);
                put_bytes(&mut buf, key);
            }
            Request::Unpin { key } => {
                buf.put_u8(TAG_UNPIN);
                put_bytes(&mut buf, key);
            }
            Request::SetTenant { tenant } => {
                buf.put_u8(TAG_SET_TENANT);
                buf.put_u32_le(*tenant);
            }
        }
        buf.freeze()
    }

    /// Decode a wire frame.
    pub fn decode(mut frame: Bytes) -> Result<Request, ProtoError> {
        if frame.remaining() < 1 {
            return Err(ProtoError("empty request"));
        }
        let tag = frame.get_u8();
        Ok(match tag {
            TAG_GET => {
                let key = get_bytes(&mut frame)?;
                if frame.remaining() < 1 {
                    return Err(ProtoError("truncated get dst"));
                }
                let dst = match frame.get_u8() {
                    0 => None,
                    1 => Some(get_wirebuf(&mut frame)?),
                    _ => return Err(ProtoError("bad dst marker")),
                };
                Request::Get { key, dst }
            }
            TAG_SET => {
                let (key, flags, expire_at, value) = get_store_fields(&mut frame)?;
                Request::Set {
                    key,
                    flags,
                    expire_at,
                    value,
                }
            }
            TAG_ADD => {
                let (key, flags, expire_at, value) = get_store_fields(&mut frame)?;
                Request::Add {
                    key,
                    flags,
                    expire_at,
                    value,
                }
            }
            TAG_REPLACE => {
                let (key, flags, expire_at, value) = get_store_fields(&mut frame)?;
                Request::Replace {
                    key,
                    flags,
                    expire_at,
                    value,
                }
            }
            TAG_CAS => {
                let key = get_bytes(&mut frame)?;
                if frame.remaining() < 20 {
                    return Err(ProtoError("truncated cas fields"));
                }
                let flags = frame.get_u32_le();
                let expire_at = frame.get_u64_le();
                let cas = frame.get_u64_le();
                let value = get_carrier(&mut frame)?;
                Request::Cas {
                    key,
                    flags,
                    expire_at,
                    cas,
                    value,
                }
            }
            TAG_DELETE => Request::Delete {
                key: get_bytes(&mut frame)?,
            },
            TAG_TOUCH => {
                let key = get_bytes(&mut frame)?;
                if frame.remaining() < 8 {
                    return Err(ProtoError("truncated touch expiry"));
                }
                Request::Touch {
                    key,
                    expire_at: frame.get_u64_le(),
                }
            }
            TAG_STATS => Request::Stats,
            TAG_INCR | TAG_DECR => {
                let key = get_bytes(&mut frame)?;
                if frame.remaining() < 8 {
                    return Err(ProtoError("truncated delta"));
                }
                let delta = frame.get_u64_le();
                if tag == TAG_INCR {
                    Request::Incr { key, delta }
                } else {
                    Request::Decr { key, delta }
                }
            }
            TAG_APPEND | TAG_PREPEND => {
                let key = get_bytes(&mut frame)?;
                let data = get_bytes(&mut frame)?;
                if tag == TAG_APPEND {
                    Request::Append { key, data }
                } else {
                    Request::Prepend { key, data }
                }
            }
            TAG_MULTI_GET => {
                if frame.remaining() < 4 {
                    return Err(ProtoError("truncated multiget count"));
                }
                let n = frame.get_u32_le() as usize;
                if n > 65_536 {
                    return Err(ProtoError("multiget too large"));
                }
                let mut keys = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    keys.push(get_bytes(&mut frame)?);
                }
                Request::MultiGet { keys }
            }
            TAG_PIN => Request::Pin {
                key: get_bytes(&mut frame)?,
            },
            TAG_UNPIN => Request::Unpin {
                key: get_bytes(&mut frame)?,
            },
            TAG_SET_TENANT => {
                if frame.remaining() < 4 {
                    return Err(ProtoError("truncated tenant"));
                }
                Request::SetTenant {
                    tenant: frame.get_u32_le(),
                }
            }
            _ => return Err(ProtoError("bad request tag")),
        })
    }
}

impl Response {
    /// Encode to a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            Response::Value { data, flags, cas } => {
                buf.put_u8(RTAG_VALUE);
                put_bytes(&mut buf, data);
                buf.put_u32_le(*flags);
                buf.put_u64_le(*cas);
            }
            Response::ValueWritten { len, flags, cas } => {
                buf.put_u8(RTAG_VALUE_WRITTEN);
                buf.put_u32_le(*len);
                buf.put_u32_le(*flags);
                buf.put_u64_le(*cas);
            }
            Response::Stored { cas } => {
                buf.put_u8(RTAG_STORED);
                buf.put_u64_le(*cas);
            }
            Response::Ok => buf.put_u8(RTAG_OK),
            Response::NotFound => buf.put_u8(RTAG_NOT_FOUND),
            Response::Exists => buf.put_u8(RTAG_EXISTS),
            Response::CasMismatch => buf.put_u8(RTAG_CAS_MISMATCH),
            Response::TooLarge => buf.put_u8(RTAG_TOO_LARGE),
            Response::OutOfMemory => buf.put_u8(RTAG_OOM),
            Response::TransferFailed => buf.put_u8(RTAG_TRANSFER_FAILED),
            Response::Stats(s) => {
                buf.put_u8(RTAG_STATS);
                for v in [
                    s.gets,
                    s.hits,
                    s.sets,
                    s.evictions,
                    s.expired,
                    s.items,
                    s.bytes,
                    s.pinned_items,
                    s.pinned_bytes,
                    s.reclaimed_pages,
                    s.reclaim_evictions,
                ] {
                    buf.put_u64_le(v);
                }
            }
            Response::Counter { value } => {
                buf.put_u8(RTAG_COUNTER);
                buf.put_u64_le(*value);
            }
            Response::NonNumeric => buf.put_u8(RTAG_NON_NUMERIC),
            Response::BadDigest => buf.put_u8(RTAG_BAD_DIGEST),
            Response::Throttled => buf.put_u8(RTAG_THROTTLED),
            Response::MultiValues { values } => {
                buf.put_u8(RTAG_MULTI_VALUES);
                buf.put_u32_le(values.len() as u32);
                for v in values {
                    match v {
                        None => buf.put_u8(0),
                        Some((data, flags, cas)) => {
                            buf.put_u8(1);
                            put_bytes(&mut buf, data);
                            buf.put_u32_le(*flags);
                            buf.put_u64_le(*cas);
                        }
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Decode a wire frame.
    pub fn decode(mut frame: Bytes) -> Result<Response, ProtoError> {
        if frame.remaining() < 1 {
            return Err(ProtoError("empty response"));
        }
        let tag = frame.get_u8();
        Ok(match tag {
            RTAG_VALUE => {
                let data = get_bytes(&mut frame)?;
                if frame.remaining() < 12 {
                    return Err(ProtoError("truncated value meta"));
                }
                Response::Value {
                    data,
                    flags: frame.get_u32_le(),
                    cas: frame.get_u64_le(),
                }
            }
            RTAG_VALUE_WRITTEN => {
                if frame.remaining() < 16 {
                    return Err(ProtoError("truncated value-written"));
                }
                Response::ValueWritten {
                    len: frame.get_u32_le(),
                    flags: frame.get_u32_le(),
                    cas: frame.get_u64_le(),
                }
            }
            RTAG_STORED => {
                if frame.remaining() < 8 {
                    return Err(ProtoError("truncated stored"));
                }
                Response::Stored {
                    cas: frame.get_u64_le(),
                }
            }
            RTAG_OK => Response::Ok,
            RTAG_NOT_FOUND => Response::NotFound,
            RTAG_EXISTS => Response::Exists,
            RTAG_CAS_MISMATCH => Response::CasMismatch,
            RTAG_TOO_LARGE => Response::TooLarge,
            RTAG_OOM => Response::OutOfMemory,
            RTAG_TRANSFER_FAILED => Response::TransferFailed,
            RTAG_STATS => {
                if frame.remaining() < 88 {
                    return Err(ProtoError("truncated stats"));
                }
                Response::Stats(KvStats {
                    gets: frame.get_u64_le(),
                    hits: frame.get_u64_le(),
                    sets: frame.get_u64_le(),
                    evictions: frame.get_u64_le(),
                    expired: frame.get_u64_le(),
                    items: frame.get_u64_le(),
                    bytes: frame.get_u64_le(),
                    pinned_items: frame.get_u64_le(),
                    pinned_bytes: frame.get_u64_le(),
                    reclaimed_pages: frame.get_u64_le(),
                    reclaim_evictions: frame.get_u64_le(),
                })
            }
            RTAG_COUNTER => {
                if frame.remaining() < 8 {
                    return Err(ProtoError("truncated counter"));
                }
                Response::Counter {
                    value: frame.get_u64_le(),
                }
            }
            RTAG_NON_NUMERIC => Response::NonNumeric,
            RTAG_MULTI_VALUES => {
                if frame.remaining() < 4 {
                    return Err(ProtoError("truncated multivalues count"));
                }
                let n = frame.get_u32_le() as usize;
                if n > 65_536 {
                    return Err(ProtoError("multivalues too large"));
                }
                let mut values = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    if frame.remaining() < 1 {
                        return Err(ProtoError("truncated multivalues entry"));
                    }
                    match frame.get_u8() {
                        0 => values.push(None),
                        1 => {
                            let data = get_bytes(&mut frame)?;
                            if frame.remaining() < 12 {
                                return Err(ProtoError("truncated multivalues meta"));
                            }
                            let flags = frame.get_u32_le();
                            let cas = frame.get_u64_le();
                            values.push(Some((data, flags, cas)));
                        }
                        _ => return Err(ProtoError("bad multivalues marker")),
                    }
                }
                Response::MultiValues { values }
            }
            RTAG_BAD_DIGEST => Response::BadDigest,
            RTAG_THROTTLED => Response::Throttled,
            _ => return Err(ProtoError("bad response tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let enc = r.encode();
        let dec = Request::decode(enc).unwrap();
        assert_eq!(r, dec);
    }

    fn roundtrip_resp(r: Response) {
        let enc = r.encode();
        let dec = Response::decode(enc).unwrap();
        assert_eq!(r, dec);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Get {
            key: Bytes::from_static(b"blk_42_0"),
            dst: None,
        });
        roundtrip_req(Request::Get {
            key: Bytes::from_static(b"k"),
            dst: Some(WireBuf {
                node: 3,
                rkey: 9,
                len: 1 << 20,
            }),
        });
        roundtrip_req(Request::Set {
            key: Bytes::from_static(b"key"),
            flags: 0xdead,
            expire_at: 12345,
            value: Carrier::Inline(Bytes::from_static(b"inline payload")),
        });
        roundtrip_req(Request::Set {
            key: Bytes::from_static(b"key"),
            flags: 1,
            expire_at: 0,
            value: Carrier::Remote {
                src: WireBuf {
                    node: 1,
                    rkey: 2,
                    len: 4096,
                },
                len: 777,
            },
        });
        roundtrip_req(Request::Add {
            key: Bytes::from_static(b"a"),
            flags: 0,
            expire_at: 9,
            value: Carrier::Inline(Bytes::new()),
        });
        roundtrip_req(Request::Replace {
            key: Bytes::from_static(b"r"),
            flags: 2,
            expire_at: 0,
            value: Carrier::Inline(Bytes::from_static(b"x")),
        });
        roundtrip_req(Request::Cas {
            key: Bytes::from_static(b"c"),
            flags: 3,
            expire_at: 1,
            cas: 88,
            value: Carrier::Inline(Bytes::from_static(b"y")),
        });
        roundtrip_req(Request::Delete {
            key: Bytes::from_static(b"d"),
        });
        roundtrip_req(Request::Touch {
            key: Bytes::from_static(b"t"),
            expire_at: 101,
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Incr {
            key: Bytes::from_static(b"n"),
            delta: 41,
        });
        roundtrip_req(Request::Decr {
            key: Bytes::from_static(b"n"),
            delta: 1,
        });
        roundtrip_req(Request::Append {
            key: Bytes::from_static(b"a"),
            data: Bytes::from_static(b"tail"),
        });
        roundtrip_req(Request::Prepend {
            key: Bytes::from_static(b"a"),
            data: Bytes::from_static(b"head"),
        });
        roundtrip_req(Request::MultiGet {
            keys: vec![
                Bytes::from_static(b"k1"),
                Bytes::from_static(b"k2"),
                Bytes::from_static(b"k3"),
            ],
        });
        roundtrip_req(Request::Pin {
            key: Bytes::from_static(b"f1:0"),
        });
        roundtrip_req(Request::Unpin {
            key: Bytes::from_static(b"f1:0"),
        });
        roundtrip_req(Request::SetTenant { tenant: 42 });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Value {
            data: Bytes::from_static(b"v"),
            flags: 5,
            cas: 6,
        });
        roundtrip_resp(Response::ValueWritten {
            len: 512 << 10,
            flags: 0,
            cas: 1,
        });
        roundtrip_resp(Response::Stored { cas: 77 });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::NotFound);
        roundtrip_resp(Response::Exists);
        roundtrip_resp(Response::CasMismatch);
        roundtrip_resp(Response::TooLarge);
        roundtrip_resp(Response::OutOfMemory);
        roundtrip_resp(Response::TransferFailed);
        roundtrip_resp(Response::Counter { value: 42 });
        roundtrip_resp(Response::NonNumeric);
        roundtrip_resp(Response::MultiValues {
            values: vec![None, Some((Bytes::from_static(b"v"), 7, 9)), None],
        });
        roundtrip_resp(Response::BadDigest);
        roundtrip_resp(Response::Throttled);
        roundtrip_resp(Response::Stats(KvStats {
            gets: 1,
            hits: 2,
            sets: 3,
            evictions: 4,
            expired: 5,
            items: 6,
            bytes: 7,
            pinned_items: 8,
            pinned_bytes: 9,
            reclaimed_pages: 10,
            reclaim_evictions: 11,
        }));
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(Request::decode(Bytes::new()).is_err());
        assert!(Request::decode(Bytes::from_static(&[200])).is_err());
        assert!(Request::decode(Bytes::from_static(&[TAG_GET, 10, 0, 0, 0, 1])).is_err());
        assert!(Response::decode(Bytes::new()).is_err());
        assert!(Response::decode(Bytes::from_static(&[RTAG_STORED, 1, 2])).is_err());
        assert!(Response::decode(Bytes::from_static(&[99])).is_err());
    }

    #[test]
    fn wirebuf_converts_both_ways() {
        let r = RemoteBuf {
            node: NodeId(7),
            rkey: RKey(13),
            len: 4096,
        };
        let w: WireBuf = r.into();
        let back: RemoteBuf = w.into();
        assert_eq!(back, r);
    }

    #[test]
    fn inline_set_frame_size_tracks_payload() {
        let small = Request::Set {
            key: Bytes::from_static(b"key"),
            flags: 0,
            expire_at: 0,
            value: Carrier::Inline(Bytes::from(vec![0u8; 100])),
        };
        let large = Request::Set {
            key: Bytes::from_static(b"key"),
            flags: 0,
            expire_at: 0,
            value: Carrier::Inline(Bytes::from(vec![0u8; 10_000])),
        };
        assert!(large.encode().len() - small.encode().len() == 9_900);
        // remote carrier keeps the frame tiny regardless of payload
        let remote = Request::Set {
            key: Bytes::from_static(b"key"),
            flags: 0,
            expire_at: 0,
            value: Carrier::Remote {
                src: WireBuf {
                    node: 0,
                    rkey: 1,
                    len: 1 << 20,
                },
                len: 1 << 20,
            },
        };
        assert!(remote.encode().len() < 64);
    }
}
