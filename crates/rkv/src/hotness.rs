//! Windowed hot-key detection: a tiny two-row count-min sketch per shard
//! with periodic decay.
//!
//! The server records every keyed read into the sketch of the key's home
//! shard. Counts are *estimates* (upper bounds — hash collisions only
//! inflate), which is exactly what hot-key detection needs: a key whose
//! estimate crosses `hot_min_count` within the current window is promoted
//! to a replicated hot entry. Every `window` recorded ops the sketch
//! halves all counters (the classic sliding-window approximation used by
//! memcached's `hot_key` tracker and Dragonfly's hotness ring), so a key
//! that cools off decays out in O(window) ops instead of staying hot
//! forever.
//!
//! Width is fixed and small (1024 counters × 2 rows = 8 KiB per shard):
//! the sketch answers "is this key in the top few permille of a skewed
//! stream", not exact frequencies, and at that job even heavy collision
//! pressure only yields false *positives* (a cold key promoted), which
//! costs one redundant hot entry, never a missed hot key. The width is
//! sized so a few thousand active keys per shard keep the per-window
//! collision noise floor well under typical promotion thresholds.

/// Counters per row. Power of two so the index mask is a single AND.
const WIDTH: usize = 1024;

/// Two-row count-min sketch over a sliding ops window.
pub struct FreqSketch {
    rows: [Box<[u32; WIDTH]>; 2],
    /// Ops recorded since the last decay.
    seen: usize,
    /// Ops per window; when `seen` reaches it all counters halve.
    window: usize,
    decays: u64,
}

/// FNV-1a, the same hash family the sharded store routes by.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl FreqSketch {
    /// Sketch with the given decay window (ops). A window of 0 is clamped
    /// to 1 so `record` always makes progress.
    pub fn new(window: usize) -> FreqSketch {
        FreqSketch {
            rows: [Box::new([0; WIDTH]), Box::new([0; WIDTH])],
            seen: 0,
            window: window.max(1),
            decays: 0,
        }
    }

    #[inline]
    fn slots(key: &[u8]) -> (usize, usize) {
        let h = fnv1a(key);
        (
            (h as usize) & (WIDTH - 1),
            ((h >> 32) as usize) & (WIDTH - 1),
        )
    }

    /// Record one access and return `(estimate, decayed)`: the count-min
    /// estimate for `key` *after* this access, and whether this record
    /// rolled the window (callers prune their hot sets on a roll).
    pub fn record(&mut self, key: &[u8]) -> (u32, bool) {
        let (i0, i1) = Self::slots(key);
        self.rows[0][i0] = self.rows[0][i0].saturating_add(1);
        self.rows[1][i1] = self.rows[1][i1].saturating_add(1);
        let est = self.rows[0][i0].min(self.rows[1][i1]);
        self.seen += 1;
        if self.seen >= self.window {
            self.seen = 0;
            self.decays += 1;
            for row in &mut self.rows {
                for c in row.iter_mut() {
                    *c >>= 1;
                }
            }
            return (est, true);
        }
        (est, false)
    }

    /// Count-min estimate (upper bound) for `key` without recording.
    pub fn estimate(&self, key: &[u8]) -> u32 {
        let (i0, i1) = Self::slots(key);
        self.rows[0][i0].min(self.rows[1][i1])
    }

    /// Window rolls so far.
    pub fn decays(&self) -> u64 {
        self.decays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_upper_bound_and_tracks_hot_key() {
        let mut sk = FreqSketch::new(10_000);
        for i in 0..1000u32 {
            sk.record(b"hot");
            sk.record(format!("cold-{i}").as_bytes());
        }
        assert!(sk.estimate(b"hot") >= 1000);
        // a specific cold key stays far below the hot one even with
        // collision inflation (2000 ops over 1024 slots/row)
        assert!(sk.estimate(b"cold-42") < sk.estimate(b"hot") / 2);
    }

    #[test]
    fn decay_halves_counters_at_window_roll() {
        let mut sk = FreqSketch::new(100);
        let mut rolled = false;
        for _ in 0..100 {
            let (_, d) = sk.record(b"k");
            rolled |= d;
        }
        assert!(rolled);
        assert_eq!(sk.decays(), 1);
        // 100 increments halved once
        assert_eq!(sk.estimate(b"k"), 50);
    }

    #[test]
    fn zero_window_is_clamped() {
        let mut sk = FreqSketch::new(0);
        let (est, rolled) = sk.record(b"k");
        assert_eq!(est, 1);
        assert!(rolled);
    }
}
