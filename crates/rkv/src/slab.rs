//! Memcached-style slab allocator.
//!
//! Memory is carved into fixed-size *pages* (default 1 MiB), each assigned
//! to a *slab class* with a fixed chunk size; chunk sizes grow geometrically
//! from `chunk_min` up to `item_max`. An item occupies one chunk of the
//! smallest class that fits it.
//!
//! Pages are assigned to a class on first use (classic memcached
//! behaviour — the cause of "slab calcification"), but a page whose
//! chunks are all free can be *retired* back to the global budget with
//! [`SlabAllocator::retire_page`]; any class may then claim it under
//! allocation pressure. The store layer drives retirement for classes
//! that have gone idle (see `KvStore::reclaim`), which un-strands memory
//! when the value-size distribution shifts.

use std::fmt;

/// Allocator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlabConfig {
    /// Total memory budget in bytes (like memcached `-m`).
    pub mem_limit: u64,
    /// Page size; also the largest storable item (+metadata).
    pub page_size: usize,
    /// Smallest chunk size.
    pub chunk_min: usize,
    /// Geometric growth factor between classes (memcached `-f`).
    pub growth: f64,
    /// Whether pages allocate backing host memory. `true` gives the real
    /// memcpy data path (criterion microbenches); `false` keeps exact
    /// allocation/eviction semantics while item payloads live elsewhere as
    /// zero-copy handles (the simulation store), so multi-GiB simulated
    /// buffers do not consume multi-GiB of host RAM.
    pub materialize: bool,
}

impl Default for SlabConfig {
    fn default() -> Self {
        SlabConfig {
            mem_limit: 64 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        }
    }
}

impl SlabConfig {
    /// Physical bytes one item of `item_size` consumes: the share of a page
    /// its slab class grants it. Larger than `item_size` by the class's
    /// internal fragmentation (e.g. a 512 KiB+ item occupies a whole 1 MiB
    /// page with the default growth factor). Capacity planners — like the
    /// burst-buffer flush watermark — must budget with this, not the
    /// logical size. `None` if the item exceeds `page_size`.
    pub fn item_footprint(&self, item_size: usize) -> Option<u64> {
        if item_size > self.page_size {
            return None;
        }
        let mut size = self.chunk_min;
        while size < self.page_size {
            if size >= item_size {
                let per_page = self.page_size / size;
                return Some((self.page_size / per_page) as u64);
            }
            let next = ((size as f64 * self.growth) as usize).max(size + 8);
            size = (next + 7) & !7;
        }
        Some(self.page_size as u64)
    }
}

/// Reference to one allocated chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkRef {
    /// Slab class index.
    pub class: u8,
    /// Chunk index within the class.
    pub idx: u32,
}

/// Allocation failure: no free chunk and no memory left for a new page.
/// The caller (the store) reacts by evicting from the class's LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabFull {
    /// The class that could not grow.
    pub class: u8,
}

impl fmt::Display for SlabFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slab class {} is full and memory limit reached",
            self.class
        )
    }
}
impl std::error::Error for SlabFull {}

struct SlabClass {
    chunk_size: usize,
    chunks_per_page: usize,
    pages: Vec<Box<[u8]>>,
    /// Pages ever claimed, whether or not backing memory exists. Retired
    /// pages stay counted here so chunk indices remain stable.
    virtual_pages: usize,
    /// Per-claimed-page retirement flags (indexed like `pages`).
    retired: Vec<bool>,
    free: Vec<u32>,
    allocated: usize,
}

impl SlabClass {
    fn total_chunks(&self) -> usize {
        self.virtual_pages * self.chunks_per_page
    }

    fn retired_pages(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }
}

/// The allocator. Stores item payloads in page memory; not itself
/// thread-aware (wrap in a lock for concurrent use — see `ShardedKv`).
pub struct SlabAllocator {
    config: SlabConfig,
    classes: Vec<SlabClass>,
    pages_used: usize,
}

impl SlabAllocator {
    /// Build class sizes and an empty allocator.
    pub fn new(config: SlabConfig) -> Self {
        assert!(config.growth > 1.0, "growth factor must exceed 1");
        assert!(config.chunk_min >= 8, "chunk_min too small");
        assert!(
            config.page_size as u64 <= config.mem_limit,
            "memory limit smaller than one page"
        );
        let mut classes = Vec::new();
        let mut size = config.chunk_min;
        while size < config.page_size {
            classes.push(SlabClass {
                chunk_size: size,
                chunks_per_page: config.page_size / size,
                pages: Vec::new(),
                virtual_pages: 0,
                retired: Vec::new(),
                free: Vec::new(),
                allocated: 0,
            });
            let next = ((size as f64 * config.growth) as usize).max(size + 8);
            // align to 8 like memcached
            size = (next + 7) & !7;
        }
        // final class: one chunk per page (the item_max class)
        classes.push(SlabClass {
            chunk_size: config.page_size,
            chunks_per_page: 1,
            pages: Vec::new(),
            virtual_pages: 0,
            retired: Vec::new(),
            free: Vec::new(),
            allocated: 0,
        });
        assert!(classes.len() <= u8::MAX as usize, "too many slab classes");
        SlabAllocator {
            config,
            classes,
            pages_used: 0,
        }
    }

    /// Allocator configuration.
    pub fn config(&self) -> &SlabConfig {
        &self.config
    }

    /// Largest item this allocator can store.
    pub fn item_max(&self) -> usize {
        self.config.page_size
    }

    /// Number of slab classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The class whose chunks fit `size` bytes, or `None` if over item_max.
    pub fn class_for(&self, size: usize) -> Option<u8> {
        if size > self.item_max() {
            return None;
        }
        let idx = self.classes.partition_point(|c| c.chunk_size < size);
        Some(idx as u8)
    }

    /// Chunk size of `class`.
    pub fn chunk_size(&self, class: u8) -> usize {
        self.classes[class as usize].chunk_size
    }

    /// Bytes of memory currently claimed by pages.
    pub fn memory_used(&self) -> u64 {
        (self.pages_used * self.config.page_size) as u64
    }

    /// Chunks currently allocated in `class`.
    pub fn allocated_in(&self, class: u8) -> usize {
        self.classes[class as usize].allocated
    }

    /// Allocate a chunk able to hold `size` bytes. On [`SlabFull`] the
    /// caller should evict an item of the same class and retry.
    ///
    /// Panics if `size` exceeds [`SlabAllocator::item_max`] — the protocol
    /// layer enforces the item limit before getting here.
    pub fn alloc(&mut self, size: usize) -> Result<ChunkRef, SlabFull> {
        let class = self
            .class_for(size)
            .unwrap_or_else(|| panic!("item of {size} B exceeds item_max"));
        let c = &mut self.classes[class as usize];
        if let Some(idx) = c.free.pop() {
            c.allocated += 1;
            return Ok(ChunkRef { class, idx });
        }
        // grow: claim a fresh page if the budget allows
        let budget_pages = (self.config.mem_limit / self.config.page_size as u64) as usize;
        if self.pages_used < budget_pages {
            let base = c.total_chunks() as u32;
            let page = if self.config.materialize {
                vec![0u8; self.config.page_size].into_boxed_slice()
            } else {
                Box::default()
            };
            c.pages.push(page);
            c.virtual_pages += 1;
            c.retired.push(false);
            self.pages_used += 1;
            // hand out chunk 0 of the new page; queue the rest
            for i in (1..c.chunks_per_page as u32).rev() {
                c.free.push(base + i);
            }
            c.allocated += 1;
            return Ok(ChunkRef { class, idx: base });
        }
        Err(SlabFull { class })
    }

    /// Return a chunk to its class free list.
    pub fn free(&mut self, chunk: ChunkRef) {
        let c = &mut self.classes[chunk.class as usize];
        debug_assert!((chunk.idx as usize) < c.total_chunks(), "foreign chunk");
        debug_assert!(!c.free.contains(&chunk.idx), "double free");
        c.free.push(chunk.idx);
        c.allocated -= 1;
    }

    /// Write `data` into `chunk` (at offset 0). Panics if it doesn't fit,
    /// or if the allocator was built with `materialize: false`.
    pub fn write(&mut self, chunk: ChunkRef, data: &[u8]) {
        assert!(self.config.materialize, "write on a non-materialized slab");
        let c = &mut self.classes[chunk.class as usize];
        assert!(data.len() <= c.chunk_size, "payload exceeds chunk");
        let page = chunk.idx as usize / c.chunks_per_page;
        let off = (chunk.idx as usize % c.chunks_per_page) * c.chunk_size;
        c.pages[page][off..off + data.len()].copy_from_slice(data);
    }

    /// Read `len` bytes from `chunk`. Panics if the allocator was built
    /// with `materialize: false`.
    pub fn read(&self, chunk: ChunkRef, len: usize) -> &[u8] {
        assert!(self.config.materialize, "read on a non-materialized slab");
        let c = &self.classes[chunk.class as usize];
        assert!(len <= c.chunk_size, "read exceeds chunk");
        let page = chunk.idx as usize / c.chunks_per_page;
        let off = (chunk.idx as usize % c.chunks_per_page) * c.chunk_size;
        &c.pages[page][off..off + len]
    }

    /// Per-class (chunk_size, allocated, total) table, for stats output.
    pub fn class_table(&self) -> Vec<(usize, usize, usize)> {
        self.classes
            .iter()
            .map(|c| (c.chunk_size, c.allocated, c.total_chunks()))
            .collect()
    }

    /// Chunks one page of `class` holds.
    pub fn chunks_per_page(&self, class: u8) -> usize {
        self.classes[class as usize].chunks_per_page
    }

    /// Pages currently assigned to `class` (claimed minus retired).
    pub fn pages_in(&self, class: u8) -> usize {
        let c = &self.classes[class as usize];
        c.virtual_pages - c.retired_pages()
    }

    /// Pages of `class` retired back to the global budget so far.
    pub fn retired_in(&self, class: u8) -> usize {
        self.classes[class as usize].retired_pages()
    }

    /// Whether `page` of `class` has been retired.
    pub fn is_retired(&self, class: u8, page: usize) -> bool {
        let c = &self.classes[class as usize];
        page < c.virtual_pages && c.retired[page]
    }

    /// The page (within its class) a chunk lives on.
    pub fn page_of(&self, chunk: ChunkRef) -> usize {
        chunk.idx as usize / self.classes[chunk.class as usize].chunks_per_page
    }

    /// Free chunks of `class` currently sitting on `page`.
    pub fn free_on_page(&self, class: u8, page: usize) -> usize {
        let c = &self.classes[class as usize];
        let lo = (page * c.chunks_per_page) as u32;
        let hi = lo + c.chunks_per_page as u32;
        c.free.iter().filter(|&&i| i >= lo && i < hi).count()
    }

    /// Retire `page` of `class` back to the global page budget. Only legal
    /// when every chunk of the page is free (the store evicts residents
    /// first); returns `false` if the page is still partly allocated or
    /// already retired. A retired page's chunk indices are never handed
    /// out again — the freed budget lets *any* class claim a fresh page.
    pub fn retire_page(&mut self, class: u8, page: usize) -> bool {
        let c = &mut self.classes[class as usize];
        if page >= c.virtual_pages || c.retired[page] {
            return false;
        }
        let lo = (page * c.chunks_per_page) as u32;
        let hi = lo + c.chunks_per_page as u32;
        let free_here = c.free.iter().filter(|&&i| i >= lo && i < hi).count();
        if free_here != c.chunks_per_page {
            return false; // page still has allocated chunks
        }
        c.free.retain(|&i| i < lo || i >= hi);
        c.retired[page] = true;
        if self.config.materialize {
            c.pages[page] = Box::default();
        }
        self.pages_used -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SlabAllocator {
        SlabAllocator::new(SlabConfig {
            mem_limit: 4 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        })
    }

    #[test]
    fn class_sizes_grow_geometrically_and_cover_range() {
        let a = small();
        let table = a.class_table();
        assert!(table.len() > 10);
        assert_eq!(table[0].0, 96);
        assert_eq!(table.last().unwrap().0, 1 << 20);
        for w in table.windows(2) {
            assert!(w[1].0 > w[0].0, "class sizes must increase");
        }
    }

    #[test]
    fn class_for_picks_smallest_fit() {
        let a = small();
        let c = a.class_for(100).unwrap();
        assert!(a.chunk_size(c) >= 100);
        if c > 0 {
            assert!(a.chunk_size(c - 1) < 100);
        }
        assert_eq!(a.class_for(1 << 20).map(|c| a.chunk_size(c)), Some(1 << 20));
        assert_eq!(a.class_for((1 << 20) + 1), None);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = small();
        let c1 = a.alloc(500).unwrap();
        let c2 = a.alloc(500).unwrap();
        a.write(c1, b"first-item");
        a.write(c2, b"second-item");
        assert_eq!(a.read(c1, 10), b"first-item");
        assert_eq!(a.read(c2, 11), b"second-item");
    }

    #[test]
    fn alloc_reuses_freed_chunks() {
        let mut a = small();
        let c = a.alloc(200).unwrap();
        let before = a.memory_used();
        a.free(c);
        let c2 = a.alloc(200).unwrap();
        assert_eq!(c.class, c2.class);
        assert_eq!(a.memory_used(), before, "no new page needed");
    }

    #[test]
    fn memory_limit_enforced_via_slab_full() {
        // 2 pages of budget, all going to the 1 MiB class
        let mut a = SlabAllocator::new(SlabConfig {
            mem_limit: 2 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let big = (1 << 20) - 100;
        let _c1 = a.alloc(big).unwrap();
        let _c2 = a.alloc(big).unwrap();
        let err = a.alloc(big).unwrap_err();
        assert_eq!(err.class, a.class_for(big).unwrap());
        // freeing lets the class recover
        a.free(_c1);
        assert!(a.alloc(big).is_ok());
    }

    #[test]
    fn classes_do_not_share_pages() {
        let mut a = SlabAllocator::new(SlabConfig {
            mem_limit: 2 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        // exhaust budget in the small class
        let mut chunks = Vec::new();
        while let Ok(c) = a.alloc(96) {
            chunks.push(c);
        }
        // now a big alloc must fail: pages are calcified in the small class
        assert!(a.alloc(1 << 19).is_err());
    }

    #[test]
    fn allocated_counter_tracks() {
        let mut a = small();
        let class = a.class_for(128).unwrap();
        assert_eq!(a.allocated_in(class), 0);
        let c1 = a.alloc(128).unwrap();
        let c2 = a.alloc(128).unwrap();
        assert_eq!(a.allocated_in(class), 2);
        a.free(c1);
        assert_eq!(a.allocated_in(class), 1);
        a.free(c2);
        assert_eq!(a.allocated_in(class), 0);
    }

    #[test]
    fn distinct_chunks_have_distinct_storage() {
        let mut a = small();
        let chunks: Vec<ChunkRef> = (0..50).map(|_| a.alloc(96).unwrap()).collect();
        for (i, &c) in chunks.iter().enumerate() {
            a.write(c, format!("item-{i:04}").as_bytes());
        }
        for (i, &c) in chunks.iter().enumerate() {
            assert_eq!(a.read(c, 9), format!("item-{i:04}").as_bytes());
        }
    }

    #[test]
    fn footprint_matches_allocator_classes() {
        let cfg = SlabConfig {
            mem_limit: 4 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        };
        let a = SlabAllocator::new(cfg);
        for item in [1usize, 96, 100, 1000, 10_000, 100_000, 512 << 10, 1 << 20] {
            let class = a.class_for(item).unwrap();
            let chunk = a.chunk_size(class);
            let per_page = cfg.page_size / chunk;
            let expect = (cfg.page_size / per_page) as u64;
            assert_eq!(cfg.item_footprint(item), Some(expect), "item {item}");
        }
        assert_eq!(cfg.item_footprint((1 << 20) + 1), None);
        // the half-megabyte pathology: a 512 KiB item owns a full page
        assert_eq!(cfg.item_footprint(512 << 10), Some(1 << 20));
    }

    #[test]
    #[should_panic(expected = "exceeds item_max")]
    fn oversized_alloc_panics() {
        let mut a = small();
        let _ = a.alloc(2 << 20);
    }

    #[test]
    fn retired_pages_return_budget_to_other_classes() {
        // 2 pages of budget calcified into the small class
        let mut a = SlabAllocator::new(SlabConfig {
            mem_limit: 2 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let mut chunks = Vec::new();
        while let Ok(c) = a.alloc(96) {
            chunks.push(c);
        }
        assert!(a.alloc(1 << 19).is_err(), "budget is stranded");
        let class = a.class_for(96).unwrap();
        for c in chunks {
            a.free(c);
        }
        assert_eq!(a.pages_in(class), 2);
        assert!(a.retire_page(class, 0));
        assert!(a.retire_page(class, 1));
        assert!(!a.retire_page(class, 0), "double retire must fail");
        assert_eq!(a.pages_in(class), 0);
        assert_eq!(a.retired_in(class), 2);
        assert_eq!(a.memory_used(), 0);
        // the budget is global again: another class can claim the pages
        assert!(a.alloc(1 << 19).is_ok());
        assert!(a.alloc(1 << 19).is_ok());
        assert!(a.alloc(1 << 19).is_err());
    }

    #[test]
    fn retire_refuses_partly_allocated_pages() {
        let mut a = small();
        let c1 = a.alloc(96).unwrap();
        let c2 = a.alloc(96).unwrap();
        a.free(c2);
        let page = a.page_of(c1);
        assert!(!a.retire_page(c1.class, page), "live chunk blocks retire");
        a.free(c1);
        assert!(a.retire_page(c1.class, page));
    }

    #[test]
    fn allocation_after_retirement_uses_fresh_indices() {
        let mut a = small();
        let class = a.class_for(96).unwrap();
        let per_page = a.chunks_per_page(class);
        let mut chunks: Vec<ChunkRef> = (0..per_page).map(|_| a.alloc(96).unwrap()).collect();
        let max_idx = chunks.iter().map(|c| c.idx).max().unwrap();
        for c in chunks.drain(..) {
            a.free(c);
        }
        assert!(a.retire_page(class, 0));
        // the next alloc claims a new page: indices never collide with the
        // retired page's range
        let fresh = a.alloc(96).unwrap();
        assert!(
            fresh.idx > max_idx,
            "retired chunk indices must not be reused"
        );
    }
}
