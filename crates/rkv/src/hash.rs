//! Hashing: FNV-1a for buckets/shards and a ketama-style consistent-hash
//! ring for client-side server selection.
//!
//! Consistent hashing is what lets the burst buffer add/remove KV servers
//! with minimal key movement — the `repro_ab4` ablation quantifies the
//! remap fraction against round-robin.

/// 64-bit FNV-1a.
#[inline]
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// 64-bit FNV-1a seeded with a round index, for ring points.
#[inline]
fn fnv1a_point(data: &[u8], round: u32) -> u64 {
    let mut h = fnv1a(data);
    // mix the round in with a splitmix-style finalizer
    h ^= round as u64;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Ketama-style consistent-hash ring over abstract members.
#[derive(Debug, Clone)]
pub struct HashRing<T: Clone> {
    /// (point, member index) sorted by point.
    points: Vec<(u64, usize)>,
    members: Vec<T>,
    vnodes: u32,
}

impl<T: Clone> HashRing<T> {
    /// Build a ring with `vnodes` virtual points per member. Member
    /// identity on the ring comes from `label`, so rebuilding with the
    /// same labels yields the same placement.
    pub fn new(members: Vec<T>, labels: &[String], vnodes: u32) -> Self {
        assert_eq!(members.len(), labels.len(), "one label per member");
        assert!(vnodes > 0, "need at least one virtual node");
        let mut points = Vec::with_capacity(members.len() * vnodes as usize);
        for (idx, label) in labels.iter().enumerate() {
            for round in 0..vnodes {
                points.push((fnv1a_point(label.as_bytes(), round), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            members,
            vnodes,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Virtual points per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Member owning `key`. Panics on an empty ring.
    pub fn route(&self, key: &[u8]) -> &T {
        assert!(!self.members.is_empty(), "route on empty ring");
        let h = fnv1a(key);
        let idx = match self.points.binary_search_by_key(&h, |(p, _)| *p) {
            Ok(i) => i,
            Err(i) => {
                if i == self.points.len() {
                    0 // wrap around
                } else {
                    i
                }
            }
        };
        &self.members[self.points[idx].1]
    }

    /// The first `n` distinct members walking clockwise from `key`'s point
    /// (used for replica placement).
    pub fn route_n(&self, key: &[u8], n: usize) -> Vec<&T> {
        assert!(!self.members.is_empty(), "route on empty ring");
        let h = fnv1a(key);
        let start = match self.points.binary_search_by_key(&h, |(p, _)| *p) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        };
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for k in 0..self.points.len() {
            let (_, m) = self.points[(start + k) % self.points.len()];
            if !seen.contains(&m) {
                seen.push(m);
                out.push(&self.members[m]);
                if out.len() == n.min(self.members.len()) {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring_of(n: usize) -> HashRing<usize> {
        let members: Vec<usize> = (0..n).collect();
        let labels: Vec<String> = (0..n).map(|i| format!("server-{i}")).collect();
        HashRing::new(members, &labels, 160)
    }

    #[test]
    fn fnv_known_values() {
        // reference vectors for 64-bit FNV-1a
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_deterministic() {
        let r1 = ring_of(8);
        let r2 = ring_of(8);
        for i in 0..1000u32 {
            let k = format!("key-{i}");
            assert_eq!(r1.route(k.as_bytes()), r2.route(k.as_bytes()));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = ring_of(8);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        let n = 80_000;
        for i in 0..n {
            let k = format!("block_{i}_chunk_{}", i % 7);
            *counts.entry(*ring.route(k.as_bytes())).or_default() += 1;
        }
        let ideal = n / 8;
        for (m, c) in &counts {
            let dev = (*c as f64 - ideal as f64).abs() / ideal as f64;
            assert!(dev < 0.25, "member {m} holds {c} keys ({dev:.2} off ideal)");
        }
        assert_eq!(counts.len(), 8);
    }

    #[test]
    fn adding_a_member_remaps_about_one_nth() {
        let before = ring_of(8);
        let after = ring_of(9);
        let n = 40_000;
        let mut moved = 0;
        for i in 0..n {
            let k = format!("key-{i}");
            if before.route(k.as_bytes()) != after.route(k.as_bytes()) {
                moved += 1;
            }
        }
        let frac = moved as f64 / n as f64;
        // ideal is 1/9 ≈ 0.11; consistent hashing should stay well under 0.2
        assert!(frac < 0.2, "remap fraction {frac}");
        assert!(frac > 0.03, "suspiciously little movement: {frac}");
    }

    #[test]
    fn route_n_distinct_members() {
        let ring = ring_of(5);
        let replicas = ring.route_n(b"some-key", 3);
        assert_eq!(replicas.len(), 3);
        let mut sorted: Vec<usize> = replicas.iter().map(|r| **r).collect();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        // first replica must agree with route()
        assert_eq!(replicas[0], ring.route(b"some-key"));
    }

    #[test]
    fn route_n_caps_at_member_count() {
        let ring = ring_of(2);
        assert_eq!(ring.route_n(b"k", 5).len(), 2);
    }

    #[test]
    fn single_member_takes_everything() {
        let ring = ring_of(1);
        for i in 0..100u32 {
            assert_eq!(*ring.route(format!("{i}").as_bytes()), 0);
        }
    }
}
