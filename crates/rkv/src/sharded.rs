//! Lock-striped concurrent facade over [`KvStore`] — the shape of
//! memcached's threaded engine. Inside the single-threaded simulation the
//! locks are uncontended; the criterion benches drive this type from real
//! host threads to measure the engine under contention.

use bytes::Bytes;
use parking_lot::Mutex;

use crate::hash::fnv1a;
use crate::slab::SlabConfig;
use crate::store::{KvError, KvStats, KvStore, Value};

/// `N`-way lock-striped store. Keys map to shards by FNV-1a.
pub struct ShardedKv {
    shards: Vec<Mutex<KvStore>>,
}

impl ShardedKv {
    /// Create `shards` stripes, splitting `config.mem_limit` between them.
    /// The division remainder is spread one byte per shard so the
    /// aggregate budget is preserved exactly.
    ///
    /// Every shard needs at least one slab page to hold an item, but the
    /// aggregate must never exceed the configured `-m` budget: when the
    /// budget cannot give each requested shard a whole page the shard
    /// count is clamped down, and a budget below a single page runs one
    /// shard with the page size shrunk to the budget.
    pub fn new(shards: usize, config: SlabConfig) -> Self {
        Self::with_reclaim_idle(shards, config, 0)
    }

    /// Like [`ShardedKv::new`], additionally enabling idle-page slab
    /// reclamation on every shard (see [`KvStore::set_reclaim_idle`]).
    pub fn with_reclaim_idle(shards: usize, config: SlabConfig, reclaim_idle_ns: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(config.mem_limit > 0, "memory budget must be positive");
        let (shards, config) = if config.mem_limit < config.page_size as u64 {
            let shrunk = SlabConfig {
                page_size: config.mem_limit as usize,
                ..config
            };
            (1, shrunk)
        } else {
            let max_shards = (config.mem_limit / config.page_size as u64) as usize;
            (shards.min(max_shards), config)
        };
        let base = config.mem_limit / shards as u64;
        let remainder = config.mem_limit % shards as u64;
        ShardedKv {
            shards: (0..shards)
                .map(|i| {
                    let extra = u64::from((i as u64) < remainder);
                    let per_shard = SlabConfig {
                        mem_limit: base + extra,
                        ..config
                    };
                    let mut store = KvStore::new(per_shard);
                    store.set_reclaim_idle(reclaim_idle_ns);
                    Mutex::new(store)
                })
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stripe that owns `key` — the single routing function shared by
    /// the lock-striped facade and the per-core server engine, so "every
    /// key is served by exactly one shard" holds by construction.
    #[inline]
    pub fn shard_index(&self, key: &[u8]) -> usize {
        (fnv1a(key) as usize) % self.shards.len()
    }

    #[inline]
    fn shard(&self, key: &[u8]) -> &Mutex<KvStore> {
        &self.shards[self.shard_index(key)]
    }

    /// See [`KvStore::set`].
    pub fn set(
        &self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        self.shard(key)
            .lock()
            .set(key, value, flags, expire_at, now)
    }

    /// See [`KvStore::set_as`]: a set on behalf of `tenant`, counted in
    /// the owning shard's per-tenant accounting.
    pub fn set_as(
        &self,
        tenant: u32,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        self.shard(key)
            .lock()
            .set_as(tenant, key, value, flags, expire_at, now)
    }

    /// Apply a per-tenant eviction floor to every shard, as a fraction of
    /// each shard's memory budget (see [`KvStore::set_tenant_floor`]).
    /// 0.0 disables (seed behaviour).
    pub fn set_tenant_floor_frac(&self, frac: f64) {
        for s in &self.shards {
            let mut store = s.lock();
            let floor = (store.mem_limit() as f64 * frac) as u64;
            store.set_tenant_floor(floor);
        }
    }

    /// Resident payload bytes owned by `tenant`, summed over shards.
    pub fn tenant_bytes(&self, tenant: u32) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().tenant_bytes(tenant))
            .sum()
    }

    /// Cross-tenant evictions denied by the floor, summed over shards.
    pub fn floor_denied(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().floor_denied()).sum()
    }

    /// See [`KvStore::add`].
    pub fn add(
        &self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        self.shard(key)
            .lock()
            .add(key, value, flags, expire_at, now)
    }

    /// See [`KvStore::replace`].
    pub fn replace(
        &self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        self.shard(key)
            .lock()
            .replace(key, value, flags, expire_at, now)
    }

    /// See [`KvStore::cas`].
    pub fn cas(
        &self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        expected_cas: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        self.shard(key)
            .lock()
            .cas(key, value, flags, expire_at, expected_cas, now)
    }

    /// See [`KvStore::get`].
    pub fn get(&self, key: &[u8], now: u64) -> Option<Value> {
        self.shard(key).lock().get(key, now)
    }

    /// See [`KvStore::delete`].
    pub fn delete(&self, key: &[u8]) -> bool {
        self.shard(key).lock().delete(key)
    }

    /// See [`KvStore::incr`].
    pub fn incr(&self, key: &[u8], delta: u64, now: u64) -> Result<u64, KvError> {
        self.shard(key).lock().incr(key, delta, now)
    }

    /// See [`KvStore::decr`].
    pub fn decr(&self, key: &[u8], delta: u64, now: u64) -> Result<u64, KvError> {
        self.shard(key).lock().decr(key, delta, now)
    }

    /// See [`KvStore::append`].
    pub fn append(&self, key: &[u8], suffix: &[u8], now: u64) -> Result<u64, KvError> {
        self.shard(key).lock().append(key, suffix, now)
    }

    /// See [`KvStore::prepend`].
    pub fn prepend(&self, key: &[u8], prefix: &[u8], now: u64) -> Result<u64, KvError> {
        self.shard(key).lock().prepend(key, prefix, now)
    }

    /// See [`KvStore::touch`].
    pub fn touch(&self, key: &[u8], expire_at: u64, now: u64) -> Result<(), KvError> {
        self.shard(key).lock().touch(key, expire_at, now)
    }

    /// See [`KvStore::contains`].
    pub fn contains(&self, key: &[u8], now: u64) -> bool {
        self.shard(key).lock().contains(key, now)
    }

    /// See [`KvStore::peek`].
    pub fn peek(&self, key: &[u8], now: u64) -> Option<(Value, u64)> {
        self.shard(key).lock().peek(key, now)
    }

    /// See [`KvStore::pin`].
    pub fn pin(&self, key: &[u8], now: u64) -> Result<(), KvError> {
        self.shard(key).lock().pin(key, now)
    }

    /// See [`KvStore::unpin`].
    pub fn unpin(&self, key: &[u8]) -> Result<(), KvError> {
        self.shard(key).lock().unpin(key)
    }

    /// See [`KvStore::corrupt_resident`]. Shards are visited in index
    /// order (each walking its keys sorted), so a deterministic `select`
    /// closure sees values in a deterministic sequence.
    pub fn corrupt_resident(&self, mut select: impl FnMut(usize) -> Option<(usize, u8)>) -> u64 {
        let mut corrupted = 0;
        for s in &self.shards {
            corrupted += s.lock().corrupt_resident(&mut select);
        }
        corrupted
    }

    /// See [`KvStore::clear`]. Shards are cleared one at a time (the whole
    /// store is never locked at once, matching the per-shard locking rule).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Aggregate counters across shards.
    pub fn stats(&self) -> KvStats {
        let mut out = KvStats::default();
        for s in &self.shards {
            let st = s.lock().stats();
            out.gets += st.gets;
            out.hits += st.hits;
            out.sets += st.sets;
            out.evictions += st.evictions;
            out.expired += st.expired;
            out.items += st.items;
            out.bytes += st.bytes;
            out.pinned_items += st.pinned_items;
            out.pinned_bytes += st.pinned_bytes;
            out.reclaimed_pages += st.reclaimed_pages;
            out.reclaim_evictions += st.reclaim_evictions;
        }
        out
    }

    /// Counters of a single stripe (per-shard telemetry and balance
    /// reporting).
    pub fn shard_stats(&self, shard: usize) -> KvStats {
        self.shards[shard].lock().stats()
    }

    /// Run the zero-risk reclamation sweep on every shard (see
    /// [`KvStore::reclaim_idle_pages`]); returns total pages retired.
    pub fn reclaim_idle_pages(&self, now: u64) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().reclaim_idle_pages(now))
            .sum()
    }

    /// Total live items.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slab memory claimed.
    pub fn memory_used(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().memory_used()).sum()
    }

    /// Largest storable item.
    pub fn item_max(&self) -> usize {
        self.shards[0].lock().item_max()
    }

    /// Aggregate configured memory budget across shards.
    pub fn mem_limit(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().mem_limit()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn kv(shards: usize) -> ShardedKv {
        ShardedKv::new(
            shards,
            SlabConfig {
                mem_limit: 16 << 20,
                ..SlabConfig::default()
            },
        )
    }

    #[test]
    fn basic_ops_route_consistently() {
        let s = kv(4);
        for i in 0..500 {
            let k = format!("key-{i}");
            s.set(
                k.as_bytes(),
                Bytes::from(format!("v{i}").into_bytes()),
                0,
                0,
                0,
            )
            .unwrap();
        }
        for i in 0..500 {
            let k = format!("key-{i}");
            assert_eq!(
                &s.get(k.as_bytes(), 0).unwrap().data[..],
                format!("v{i}").as_bytes()
            );
        }
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let s = kv(8);
        for i in 0..100 {
            s.set(
                format!("k{i}").as_bytes(),
                Bytes::from_static(b"v"),
                0,
                0,
                0,
            )
            .unwrap();
        }
        for i in 0..100 {
            s.get(format!("k{i}").as_bytes(), 0);
        }
        s.get(b"missing", 0);
        let st = s.stats();
        assert_eq!(st.sets, 100);
        assert_eq!(st.gets, 101);
        assert_eq!(st.hits, 100);
        assert_eq!(st.items, 100);
    }

    #[test]
    fn concurrent_access_from_real_threads() {
        let s = Arc::new(kv(8));
        let threads = 8;
        let per = 500;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = format!("t{t}-k{i}");
                        s.set(
                            k.as_bytes(),
                            Bytes::from(k.clone().into_bytes()),
                            t as u32,
                            0,
                            0,
                        )
                        .unwrap();
                        let v = s.get(k.as_bytes(), 0).unwrap();
                        assert_eq!(&v.data[..], k.as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), threads * per);
        assert_eq!(s.stats().hits, (threads * per) as u64);
    }

    #[test]
    fn splitting_preserves_aggregate_capacity() {
        // a budget that does not divide evenly across shards must not
        // lose the remainder (7 shards over 16 MiB + 5 leaves 5 bytes)
        for shards in [1usize, 3, 7, 8] {
            let budget = (16u64 << 20) + 5;
            let s = ShardedKv::new(
                shards,
                SlabConfig {
                    mem_limit: budget,
                    ..SlabConfig::default()
                },
            );
            assert_eq!(
                s.mem_limit(),
                budget,
                "{shards} shards must keep the full {budget}-byte budget"
            );
        }
        // a budget below one page runs a single shard with shrunken pages
        // instead of inflating to 4 whole pages (the old behaviour)
        let s = ShardedKv::new(
            4,
            SlabConfig {
                mem_limit: 10 << 10,
                ..SlabConfig::default()
            },
        );
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.mem_limit(), 10 << 10);
        s.set(b"k", Bytes::from_static(b"v"), 0, 0, 0).unwrap();
        assert_eq!(&s.get(b"k", 0).unwrap().data[..], b"v");
    }

    #[test]
    fn aggregate_budget_never_exceeds_configured_limit() {
        // regression: the per-shard one-page floor used to inflate the
        // aggregate budget whenever mem_limit / shards < page_size
        let page = SlabConfig::default().page_size as u64;
        for shards in [1usize, 2, 4, 8, 16] {
            for budget in [
                1 << 10,
                page - 1,
                page,
                page + 1,
                2 * page + 17,
                5 * page,
                (16 << 20) + 3,
            ] {
                let s = ShardedKv::new(
                    shards,
                    SlabConfig {
                        mem_limit: budget,
                        ..SlabConfig::default()
                    },
                );
                assert!(
                    s.mem_limit() <= budget,
                    "{shards} shards over {budget} B must not exceed the budget \
                     (got {})",
                    s.mem_limit()
                );
                assert_eq!(
                    s.mem_limit(),
                    budget,
                    "clamping must still hand out the whole budget"
                );
            }
        }
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let s = kv(8);
        for i in 0..200 {
            let k = format!("key-{i}");
            let idx = s.shard_index(k.as_bytes());
            assert!(idx < s.shard_count());
            assert_eq!(idx, s.shard_index(k.as_bytes()));
        }
    }

    #[test]
    fn single_shard_works() {
        let s = kv(1);
        s.set(b"a", Bytes::from_static(b"1"), 0, 0, 0).unwrap();
        assert!(s.delete(b"a"));
        assert!(s.is_empty());
    }
}
