//! The single-shard key-value store: slab-accounted items, per-class LRU
//! eviction, lazy expiry, and CAS — the memcached storage engine.
//!
//! Capacity, class selection, and eviction behave exactly as in memcached:
//! every item claims a chunk of the smallest slab class that fits
//! `2 + key + value` bytes, and memory pressure evicts the class's LRU
//! tail. Payload bytes, however, are held as zero-copy [`Bytes`] handles
//! rather than being copied into page memory, so simulating a multi-GiB
//! buffer does not consume multi-GiB of host RAM (the materialized memcpy
//! path of the allocator itself is exercised directly by its unit tests
//! and criterion benches).

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;

use crate::slab::{ChunkRef, SlabAllocator, SlabConfig, SlabFull};

/// Store-level failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// key + value exceed the item size limit (clients must chunk).
    TooLarge,
    /// Nothing evictable: every chunk of the class is pinned or the class
    /// cannot grow. (With LRU enabled this only happens when a single item
    /// is larger than all existing items of its class combined budget.)
    OutOfMemory,
    /// Key absent (`replace`, `cas`, `touch`).
    NotFound,
    /// Key already present (`add`).
    Exists,
    /// CAS token did not match.
    CasMismatch,
    /// incr/decr on a value that is not an unsigned decimal number.
    NonNumeric,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KvError::TooLarge => "item exceeds size limit",
            KvError::OutOfMemory => "out of memory (nothing evictable)",
            KvError::NotFound => "key not found",
            KvError::Exists => "key already exists",
            KvError::CasMismatch => "cas mismatch",
            KvError::NonNumeric => "value is not a number",
        };
        f.write_str(s)
    }
}
impl std::error::Error for KvError {}

/// A fetched value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// Payload bytes.
    pub data: Bytes,
    /// Opaque client flags (memcached semantics).
    pub flags: u32,
    /// CAS token for optimistic concurrency.
    pub cas: u64,
}

/// Store counters (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// GET requests.
    pub gets: u64,
    /// GET requests that found a live item.
    pub hits: u64,
    /// Successful stores (set/add/replace/cas).
    pub sets: u64,
    /// Items evicted by LRU pressure.
    pub evictions: u64,
    /// Items reaped after expiry.
    pub expired: u64,
    /// Live items.
    pub items: u64,
    /// Live payload bytes (keys + values).
    pub bytes: u64,
    /// Live items pinned against LRU eviction.
    pub pinned_items: u64,
    /// Payload bytes (keys + values) of pinned items.
    pub pinned_bytes: u64,
    /// Idle slab pages retired back to the global budget.
    pub reclaimed_pages: u64,
    /// Items evicted to free a page for reclamation (also counted in
    /// `evictions`).
    pub reclaim_evictions: u64,
}

impl KvStats {
    /// Hit ratio over all GETs (1.0 when no GETs yet).
    pub fn hit_ratio(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }
}

#[derive(Clone)]
struct Meta {
    chunk: ChunkRef,
    key_len: u16,
    value: Bytes,
    flags: u32,
    cas: u64,
    /// Absolute expiry in ns; 0 = never.
    expire_at: u64,
    /// Pinned items are skipped by LRU eviction (burst-buffer chunks stay
    /// pinned until their flush is acknowledged). Explicit `delete` and
    /// expiry still remove them.
    pinned: bool,
    /// Owning tenant (0 = untenanted). Set by [`KvStore::set_as`];
    /// ownership survives in-place rewrites (append/incr/touch) issued
    /// without a tenant context.
    tenant: u32,
}

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct LruNode {
    prev: u32,
    next: u32,
}

struct ClassLru {
    head: u32,
    tail: u32,
    nodes: Vec<LruNode>,
}

impl ClassLru {
    fn new() -> Self {
        ClassLru {
            head: NONE,
            tail: NONE,
            nodes: Vec::new(),
        }
    }

    fn ensure(&mut self, idx: u32) {
        if self.nodes.len() <= idx as usize {
            self.nodes.resize(
                idx as usize + 1,
                LruNode {
                    prev: NONE,
                    next: NONE,
                },
            );
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.ensure(idx);
        self.nodes[idx as usize] = LruNode {
            prev: NONE,
            next: self.head,
        };
        if self.head != NONE {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: u32) {
        let node = self.nodes[idx as usize];
        if node.prev != NONE {
            self.nodes[node.prev as usize].next = node.next;
        } else {
            self.head = node.next;
        }
        if node.next != NONE {
            self.nodes[node.next as usize].prev = node.prev;
        } else {
            self.tail = node.prev;
        }
    }

    fn touch(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

/// Single-shard store. Not internally synchronized; see
/// [`crate::sharded::ShardedKv`] for the concurrent facade.
pub struct KvStore {
    slab: SlabAllocator,
    map: HashMap<Box<[u8]>, Meta>,
    /// chunk → key, so the LRU tail can be unlinked during eviction.
    chunk_keys: HashMap<ChunkRef, Box<[u8]>>,
    lru: Vec<ClassLru>,
    next_cas: u64,
    stats: KvStats,
    /// Reclaim window in ns: a class with no allocation for this long is
    /// "idle" and its pages may be retired under pressure. 0 = disabled
    /// (classic memcached calcification).
    reclaim_idle_ns: u64,
    /// Last successful allocation time per slab class.
    last_alloc: Vec<u64>,
    /// Tenant issuing the current store op (0 = untenanted); set
    /// transiently by [`KvStore::set_as`] so eviction knows the requester.
    ctx_tenant: u32,
    /// Per-tenant eviction floor in bytes: cross-tenant eviction may not
    /// push a tenant's resident bytes below this. 0 = disabled (seed
    /// behaviour, no cross-tenant protection).
    tenant_floor: u64,
    /// Resident payload bytes (key + value) per tenant (tenant 0 untracked).
    tenant_bytes: HashMap<u32, u64>,
    /// Cross-tenant eviction attempts denied by the floor.
    floor_denied: u64,
}

impl KvStore {
    /// Create a store with the given slab configuration. The allocator is
    /// always run non-materialized here (see the module docs).
    pub fn new(config: SlabConfig) -> Self {
        let slab = SlabAllocator::new(SlabConfig {
            materialize: false,
            ..config
        });
        let lru = (0..slab.class_count()).map(|_| ClassLru::new()).collect();
        let last_alloc = vec![0; slab.class_count()];
        KvStore {
            slab,
            map: HashMap::new(),
            chunk_keys: HashMap::new(),
            lru,
            next_cas: 1,
            stats: KvStats::default(),
            reclaim_idle_ns: 0,
            last_alloc,
            ctx_tenant: 0,
            tenant_floor: 0,
            tenant_bytes: HashMap::new(),
            floor_denied: 0,
        }
    }

    /// Enable idle-page reclamation: a slab class with no allocation in
    /// the last `ns` nanoseconds may have pages retired to the global
    /// budget when another class is under allocation pressure. 0 disables
    /// reclamation (seed behaviour).
    pub fn set_reclaim_idle(&mut self, ns: u64) {
        self.reclaim_idle_ns = ns;
    }

    /// The configured reclaim window (0 = disabled).
    pub fn reclaim_idle(&self) -> u64 {
        self.reclaim_idle_ns
    }

    /// Read-only view of the slab allocator (page/class diagnostics).
    pub fn slab(&self) -> &SlabAllocator {
        &self.slab
    }

    /// Largest storable item (key + value bytes).
    pub fn item_max(&self) -> usize {
        self.slab.item_max()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Live item count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of slab memory claimed from the budget.
    pub fn memory_used(&self) -> u64 {
        self.slab.memory_used()
    }

    /// Configured memory budget (slab `mem_limit`).
    pub fn mem_limit(&self) -> u64 {
        self.slab.config().mem_limit
    }

    fn is_expired(meta: &Meta, now: u64) -> bool {
        meta.expire_at != 0 && meta.expire_at <= now
    }

    fn remove_entry(&mut self, key: &[u8]) -> Option<Meta> {
        let meta = self.map.remove(key)?;
        self.lru[meta.chunk.class as usize].unlink(meta.chunk.idx);
        self.chunk_keys.remove(&meta.chunk);
        self.slab.free(meta.chunk);
        self.stats.items -= 1;
        self.stats.bytes -= meta.key_len as u64 + meta.value.len() as u64;
        if meta.pinned {
            self.stats.pinned_items -= 1;
            self.stats.pinned_bytes -= meta.key_len as u64 + meta.value.len() as u64;
        }
        if meta.tenant != 0 {
            let size = meta.key_len as u64 + meta.value.len() as u64;
            let left = self
                .tenant_bytes
                .get_mut(&meta.tenant)
                .expect("tenant item was accounted");
            *left -= size;
            if *left == 0 {
                self.tenant_bytes.remove(&meta.tenant);
            }
        }
        Some(meta)
    }

    /// Whether evicting this item on behalf of `ctx_tenant` would push its
    /// owner's resident bytes below the configured floor. Self-eviction
    /// (owner == requester) and untenanted items are never floor-protected.
    fn floor_protected(&self, meta: &Meta) -> bool {
        self.tenant_floor > 0
            && meta.tenant != 0
            && meta.tenant != self.ctx_tenant
            && self
                .tenant_bytes
                .get(&meta.tenant)
                .copied()
                .unwrap_or(0)
                .saturating_sub(meta.key_len as u64 + meta.value.len() as u64)
                < self.tenant_floor
    }

    /// Evict the coldest *unpinned* item of `class`, walking from the LRU
    /// tail. Returns false if every resident item of the class is pinned
    /// (or the class is empty) — the caller then reports
    /// [`KvError::OutOfMemory`] instead of dropping protected data.
    fn evict_one(&mut self, class: u8) -> bool {
        let mut idx = self.lru[class as usize].tail;
        while idx != NONE {
            let chunk = ChunkRef { class, idx };
            let key = self.chunk_keys.get(&chunk).expect("LRU node has an owner");
            let meta = self.map.get(key.as_ref()).expect("chunk owner is live");
            if meta.pinned {
                idx = self.lru[class as usize].nodes[idx as usize].prev;
                continue;
            }
            if self.floor_protected(meta) {
                self.floor_denied += 1;
                idx = self.lru[class as usize].nodes[idx as usize].prev;
                continue;
            }
            let key = key.to_vec();
            self.remove_entry(&key);
            self.stats.evictions += 1;
            return true;
        }
        false
    }

    fn alloc_with_eviction(&mut self, total: usize, now: u64) -> Result<ChunkRef, KvError> {
        loop {
            match self.slab.alloc(total) {
                Ok(c) => {
                    self.last_alloc[c.class as usize] = now;
                    return Ok(c);
                }
                Err(SlabFull { class }) => {
                    // under pressure, first try to pull an idle page back
                    // from a calcified class; fall back to same-class LRU
                    if self.try_reclaim_page(Some(class), now, true) {
                        continue;
                    }
                    if !self.evict_one(class) {
                        return Err(KvError::OutOfMemory);
                    }
                }
            }
        }
    }

    /// Retire one page from an idle class (coldest class first; within a
    /// class, the page with the fewest residents). `needy` is exempt from
    /// reclamation — its own pressure triggered the call. When
    /// `evict_residents` is false only fully-free pages qualify; when true
    /// the page's unpinned residents are evicted first (counted in both
    /// `evictions` and `reclaim_evictions`). Pages holding a pinned item
    /// are never reclaimed. Returns whether a page was retired.
    fn try_reclaim_page(&mut self, needy: Option<u8>, now: u64, evict_residents: bool) -> bool {
        if self.reclaim_idle_ns == 0 {
            return false;
        }
        let mut candidates: Vec<u8> = (0..self.slab.class_count() as u8)
            .filter(|&c| Some(c) != needy)
            .filter(|&c| self.slab.pages_in(c) > 0)
            .filter(|&c| now.saturating_sub(self.last_alloc[c as usize]) >= self.reclaim_idle_ns)
            .collect();
        candidates.sort_by_key(|&c| (self.last_alloc[c as usize], c));
        for class in candidates {
            if self.reclaim_from_class(class, evict_residents) {
                return true;
            }
        }
        false
    }

    fn reclaim_from_class(&mut self, class: u8, evict_residents: bool) -> bool {
        let cpp = self.slab.chunks_per_page(class);
        let claimed = self.slab.pages_in(class) + self.slab.retired_in(class);
        // most-free page first (fewest collateral evictions), page index
        // breaking ties — fully deterministic
        let mut pages: Vec<(usize, usize)> = (0..claimed)
            .filter(|&p| !self.slab.is_retired(class, p))
            .map(|p| (cpp - self.slab.free_on_page(class, p), p))
            .collect();
        pages.sort_unstable();
        for (live, page) in pages {
            if live > 0 && !evict_residents {
                break; // pages are sorted: everything after has residents too
            }
            let lo = (page * cpp) as u32;
            let hi = lo + cpp as u32;
            let mut victims: Vec<Vec<u8>> = Vec::new();
            let mut protected = false;
            // floor checks must account for earlier victims on the same
            // page: evicting k same-tenant items one by one may pass each
            // individual check yet collectively breach the floor
            let mut pending: HashMap<u32, u64> = HashMap::new();
            for idx in lo..hi {
                let chunk = ChunkRef { class, idx };
                if let Some(key) = self.chunk_keys.get(&chunk) {
                    let meta = self.map.get(key.as_ref()).expect("chunk owner is live");
                    if meta.pinned {
                        protected = true;
                        break;
                    }
                    let size = meta.key_len as u64 + meta.value.len() as u64;
                    if self.tenant_floor > 0 && meta.tenant != 0 && meta.tenant != self.ctx_tenant {
                        let resident = self
                            .tenant_bytes
                            .get(&meta.tenant)
                            .copied()
                            .unwrap_or(0)
                            .saturating_sub(pending.get(&meta.tenant).copied().unwrap_or(0));
                        if resident.saturating_sub(size) < self.tenant_floor {
                            self.floor_denied += 1;
                            protected = true;
                            break;
                        }
                        *pending.entry(meta.tenant).or_insert(0) += size;
                    }
                    victims.push(key.to_vec());
                }
            }
            if protected {
                continue;
            }
            for key in victims {
                self.remove_entry(&key);
                self.stats.evictions += 1;
                self.stats.reclaim_evictions += 1;
            }
            if self.slab.retire_page(class, page) {
                self.stats.reclaimed_pages += 1;
                return true;
            }
        }
        false
    }

    /// Maintenance sweep: retire every *fully free* page of every idle
    /// class (no resident is ever touched — the zero-risk reclamation
    /// mode). Returns pages retired. Pressure-triggered reclamation (the
    /// allocation path) additionally evicts cold residents.
    pub fn reclaim_idle_pages(&mut self, now: u64) -> u64 {
        let before = self.stats.reclaimed_pages;
        while self.try_reclaim_page(None, now, false) {}
        self.stats.reclaimed_pages - before
    }

    fn insert(
        &mut self,
        key: &[u8],
        value: &Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        let total = 2 + key.len() + value.len();
        if total > self.item_max() || key.len() > u16::MAX as usize {
            return Err(KvError::TooLarge);
        }
        // drop any previous version first so its chunk is reusable; an
        // overwrite inherits the old version's pin (a repair write to a
        // still-unflushed chunk must not quietly unprotect it) and — when
        // issued without a tenant context — its owner (append/incr/touch
        // rewrites must not silently strip a tenant's floor protection)
        let prev = self.remove_entry(key);
        let pinned = prev.as_ref().is_some_and(|m| m.pinned);
        let tenant = if self.ctx_tenant != 0 {
            self.ctx_tenant
        } else {
            prev.as_ref().map_or(0, |m| m.tenant)
        };
        let chunk = self.alloc_with_eviction(total, now)?;
        self.chunk_keys
            .insert(chunk, key.to_vec().into_boxed_slice());
        let cas = self.next_cas;
        self.next_cas += 1;
        self.map.insert(
            key.to_vec().into_boxed_slice(),
            Meta {
                chunk,
                key_len: key.len() as u16,
                value: value.clone(),
                flags,
                cas,
                expire_at,
                pinned,
                tenant,
            },
        );
        self.lru[chunk.class as usize].push_front(chunk.idx);
        self.stats.sets += 1;
        self.stats.items += 1;
        self.stats.bytes += key.len() as u64 + value.len() as u64;
        if pinned {
            self.stats.pinned_items += 1;
            self.stats.pinned_bytes += key.len() as u64 + value.len() as u64;
        }
        if tenant != 0 {
            *self.tenant_bytes.entry(tenant).or_insert(0) += key.len() as u64 + value.len() as u64;
        }
        Ok(cas)
    }

    /// Unconditional store. Returns the new CAS token.
    pub fn set(
        &mut self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        self.insert(key, &value, flags, expire_at, now)
    }

    /// [`KvStore::set`] on behalf of `tenant`: the item is tagged as the
    /// tenant's (counted in [`KvStore::tenant_bytes`]) and any eviction
    /// this store triggers respects *other* tenants' floors. `tenant` 0 is
    /// identical to plain `set`.
    pub fn set_as(
        &mut self,
        tenant: u32,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        self.ctx_tenant = tenant;
        let r = self.insert(key, &value, flags, expire_at, now);
        self.ctx_tenant = 0;
        r
    }

    /// Set the per-tenant eviction floor in bytes (0 disables — seed
    /// behaviour). Cross-tenant eviction may not push any tenant's
    /// resident bytes below this.
    pub fn set_tenant_floor(&mut self, bytes: u64) {
        self.tenant_floor = bytes;
    }

    /// The configured per-tenant eviction floor (0 = disabled).
    pub fn tenant_floor(&self) -> u64 {
        self.tenant_floor
    }

    /// Resident payload bytes owned by `tenant` (0 for untracked tenant 0).
    pub fn tenant_bytes(&self, tenant: u32) -> u64 {
        self.tenant_bytes.get(&tenant).copied().unwrap_or(0)
    }

    /// Cross-tenant evictions denied by the floor (cumulative).
    pub fn floor_denied(&self) -> u64 {
        self.floor_denied
    }

    /// Store only if absent (live).
    pub fn add(
        &mut self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        if self.peek_live(key, now).is_some() {
            return Err(KvError::Exists);
        }
        self.insert(key, &value, flags, expire_at, now)
    }

    /// Store only if present (live).
    pub fn replace(
        &mut self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        if self.peek_live(key, now).is_none() {
            return Err(KvError::NotFound);
        }
        self.insert(key, &value, flags, expire_at, now)
    }

    /// Compare-and-swap: store only if the live item's CAS matches.
    pub fn cas(
        &mut self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        expected_cas: u64,
        now: u64,
    ) -> Result<u64, KvError> {
        match self.peek_live(key, now) {
            None => Err(KvError::NotFound),
            Some(m) if m.cas != expected_cas => Err(KvError::CasMismatch),
            Some(_) => self.insert(key, &value, flags, expire_at, now),
        }
    }

    fn peek_live(&mut self, key: &[u8], now: u64) -> Option<Meta> {
        let meta = self.map.get(key)?.clone();
        if Self::is_expired(&meta, now) {
            self.remove_entry(key);
            self.stats.expired += 1;
            return None;
        }
        Some(meta)
    }

    /// Fetch a live value, promoting it in its class LRU.
    pub fn get(&mut self, key: &[u8], now: u64) -> Option<Value> {
        self.stats.gets += 1;
        let meta = self.peek_live(key, now)?;
        self.lru[meta.chunk.class as usize].touch(meta.chunk.idx);
        self.stats.hits += 1;
        Some(Value {
            data: meta.value.clone(),
            flags: meta.flags,
            cas: meta.cas,
        })
    }

    /// Whether a live item exists (no LRU promotion, no hit accounting).
    pub fn contains(&mut self, key: &[u8], now: u64) -> bool {
        self.peek_live(key, now).is_some()
    }

    /// Fetch a live value without LRU promotion or get/hit accounting,
    /// also returning its absolute expiry (0 = never). Used by the
    /// server's hot-replica publish path, which must not perturb the
    /// store's LRU or hit-rate telemetry.
    pub fn peek(&mut self, key: &[u8], now: u64) -> Option<(Value, u64)> {
        let meta = self.peek_live(key, now)?;
        Some((
            Value {
                data: meta.value.clone(),
                flags: meta.flags,
                cas: meta.cas,
            },
            meta.expire_at,
        ))
    }

    /// Remove an item. Returns true if it existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        self.remove_entry(key).is_some()
    }

    /// memcached `incr`: parse the live value as ASCII decimal, add
    /// `delta` (wrapping at u64), store the new textual value, and return
    /// the new number. Flags and expiry are preserved.
    pub fn incr(&mut self, key: &[u8], delta: u64, now: u64) -> Result<u64, KvError> {
        self.incr_decr(key, delta, true, now)
    }

    /// memcached `decr`: like [`KvStore::incr`] but subtracting, floored
    /// at zero (memcached semantics).
    pub fn decr(&mut self, key: &[u8], delta: u64, now: u64) -> Result<u64, KvError> {
        self.incr_decr(key, delta, false, now)
    }

    fn incr_decr(&mut self, key: &[u8], delta: u64, up: bool, now: u64) -> Result<u64, KvError> {
        let meta = self.peek_live(key, now).ok_or(KvError::NotFound)?;
        let text = std::str::from_utf8(&meta.value).map_err(|_| KvError::NonNumeric)?;
        let cur: u64 = text.trim().parse().map_err(|_| KvError::NonNumeric)?;
        let next = if up {
            cur.wrapping_add(delta)
        } else {
            cur.saturating_sub(delta)
        };
        let (flags, expire_at) = (meta.flags, meta.expire_at);
        self.insert(
            key,
            &Bytes::from(next.to_string().into_bytes()),
            flags,
            expire_at,
            now,
        )?;
        Ok(next)
    }

    /// memcached `append`: concatenate `suffix` after the live value.
    pub fn append(&mut self, key: &[u8], suffix: &[u8], now: u64) -> Result<u64, KvError> {
        let meta = self.peek_live(key, now).ok_or(KvError::NotFound)?;
        let mut v = Vec::with_capacity(meta.value.len() + suffix.len());
        v.extend_from_slice(&meta.value);
        v.extend_from_slice(suffix);
        let (flags, expire_at) = (meta.flags, meta.expire_at);
        self.insert(key, &Bytes::from(v), flags, expire_at, now)
    }

    /// memcached `prepend`: concatenate `prefix` before the live value.
    pub fn prepend(&mut self, key: &[u8], prefix: &[u8], now: u64) -> Result<u64, KvError> {
        let meta = self.peek_live(key, now).ok_or(KvError::NotFound)?;
        let mut v = Vec::with_capacity(meta.value.len() + prefix.len());
        v.extend_from_slice(prefix);
        v.extend_from_slice(&meta.value);
        let (flags, expire_at) = (meta.flags, meta.expire_at);
        self.insert(key, &Bytes::from(v), flags, expire_at, now)
    }

    /// Update the expiry of a live item.
    pub fn touch(&mut self, key: &[u8], expire_at: u64, now: u64) -> Result<(), KvError> {
        if self.peek_live(key, now).is_none() {
            return Err(KvError::NotFound);
        }
        self.map.get_mut(key).expect("checked live above").expire_at = expire_at;
        Ok(())
    }

    /// Pin a live item against LRU eviction. Idempotent; the pin survives
    /// overwrites (see `insert`) and is released by [`KvStore::unpin`],
    /// explicit delete, or expiry.
    pub fn pin(&mut self, key: &[u8], now: u64) -> Result<(), KvError> {
        if self.peek_live(key, now).is_none() {
            return Err(KvError::NotFound);
        }
        let meta = self.map.get_mut(key).expect("checked live above");
        if !meta.pinned {
            meta.pinned = true;
            self.stats.pinned_items += 1;
            self.stats.pinned_bytes += meta.key_len as u64 + meta.value.len() as u64;
        }
        Ok(())
    }

    /// Release an item's eviction pin. Idempotent on unpinned items.
    pub fn unpin(&mut self, key: &[u8]) -> Result<(), KvError> {
        let meta = self.map.get_mut(key).ok_or(KvError::NotFound)?;
        if meta.pinned {
            meta.pinned = false;
            self.stats.pinned_items -= 1;
            self.stats.pinned_bytes -= meta.key_len as u64 + meta.value.len() as u64;
        }
        Ok(())
    }

    /// Fault-injection backdoor: walk live values in sorted-key order and
    /// let `select(value_len)` pick `(offset, xor_mask)` byte damage for
    /// each. Silent by design — no stats, CAS, or LRU movement change, so
    /// the corruption is only observable through checksum verification.
    /// Returns the number of values damaged.
    pub fn corrupt_resident(
        &mut self,
        mut select: impl FnMut(usize) -> Option<(usize, u8)>,
    ) -> u64 {
        let mut keys = self.keys();
        keys.sort();
        let mut corrupted = 0;
        for key in keys {
            let Some(meta) = self.map.get_mut(key.as_slice()) else {
                continue;
            };
            if meta.value.is_empty() {
                continue;
            }
            if let Some((offset, mask)) = select(meta.value.len()) {
                debug_assert!(offset < meta.value.len());
                let mut v = meta.value.to_vec();
                let at = offset.min(v.len() - 1);
                v[at] ^= mask;
                meta.value = Bytes::from(v);
                corrupted += 1;
            }
        }
        corrupted
    }

    /// All live keys (diagnostic; unspecified order).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        self.map.keys().map(|k| k.to_vec()).collect()
    }

    /// Drop every item (models a process crash losing volatile memory).
    /// Goes through [`KvStore::delete`] so slab and item/byte accounting
    /// stay consistent; hit/miss counters are preserved.
    pub fn clear(&mut self) {
        for key in self.keys() {
            self.delete(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_mb(mb: u64) -> KvStore {
        KvStore::new(SlabConfig {
            mem_limit: mb << 20,
            ..SlabConfig::default()
        })
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = store_mb(4);
        let cas = s
            .set(b"k1", Bytes::from_static(b"value-1"), 7, 0, 0)
            .unwrap();
        let v = s.get(b"k1", 0).unwrap();
        assert_eq!(&v.data[..], b"value-1");
        assert_eq!(v.flags, 7);
        assert_eq!(v.cas, cas);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_miss() {
        let mut s = store_mb(4);
        assert!(s.get(b"nope", 0).is_none());
        let st = s.stats();
        assert_eq!(st.gets, 1);
        assert_eq!(st.hits, 0);
        assert_eq!(st.hit_ratio(), 0.0);
    }

    #[test]
    fn overwrite_replaces_value_and_bumps_cas() {
        let mut s = store_mb(4);
        let c1 = s.set(b"k", Bytes::from_static(b"old"), 0, 0, 0).unwrap();
        let c2 = s
            .set(b"k", Bytes::from_static(b"new-value"), 0, 0, 0)
            .unwrap();
        assert!(c2 > c1);
        assert_eq!(&s.get(b"k", 0).unwrap().data[..], b"new-value");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let mut s = store_mb(4);
        s.set(b"k", Bytes::from_static(b"v"), 0, 0, 0).unwrap();
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert!(s.get(b"k", 0).is_none());
        assert_eq!(s.stats().items, 0);
        assert_eq!(s.stats().bytes, 0);
    }

    #[test]
    fn add_and_replace_semantics() {
        let mut s = store_mb(4);
        s.add(b"k", Bytes::from_static(b"v1"), 0, 0, 0).unwrap();
        assert_eq!(
            s.add(b"k", Bytes::from_static(b"v2"), 0, 0, 0).unwrap_err(),
            KvError::Exists
        );
        s.replace(b"k", Bytes::from_static(b"v3"), 0, 0, 0).unwrap();
        assert_eq!(&s.get(b"k", 0).unwrap().data[..], b"v3");
        assert_eq!(
            s.replace(b"missing", Bytes::from_static(b"v"), 0, 0, 0)
                .unwrap_err(),
            KvError::NotFound
        );
    }

    #[test]
    fn cas_success_and_mismatch() {
        let mut s = store_mb(4);
        let c1 = s.set(b"k", Bytes::from_static(b"v1"), 0, 0, 0).unwrap();
        let c2 = s.cas(b"k", Bytes::from_static(b"v2"), 0, 0, c1, 0).unwrap();
        assert_eq!(
            s.cas(b"k", Bytes::from_static(b"v3"), 0, 0, c1, 0)
                .unwrap_err(),
            KvError::CasMismatch
        );
        assert!(s.cas(b"k", Bytes::from_static(b"v3"), 0, 0, c2, 0).is_ok());
        assert_eq!(
            s.cas(b"missing", Bytes::from_static(b"v"), 0, 0, 1, 0)
                .unwrap_err(),
            KvError::NotFound
        );
    }

    #[test]
    fn expiry_is_lazy_and_counted() {
        let mut s = store_mb(4);
        s.set(b"k", Bytes::from_static(b"v"), 0, 1_000, 0).unwrap();
        assert!(s.get(b"k", 999).is_some());
        assert!(s.get(b"k", 1_000).is_none());
        assert_eq!(s.stats().expired, 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn touch_extends_expiry() {
        let mut s = store_mb(4);
        s.set(b"k", Bytes::from_static(b"v"), 0, 1_000, 0).unwrap();
        s.touch(b"k", 5_000, 500).unwrap();
        assert!(s.get(b"k", 2_000).is_some());
        assert_eq!(s.touch(b"gone", 1, 0).unwrap_err(), KvError::NotFound);
    }

    #[test]
    fn lru_evicts_coldest_of_the_class() {
        // tight budget: 1 MiB of pages, ~64KiB values → one page in that class
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 1 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let val = vec![0xabu8; 60 << 10];
        // fill the class
        let mut stored = Vec::new();
        for i in 0..100 {
            let key = format!("key-{i:03}");
            match s.set(key.as_bytes(), Bytes::from(val.clone()), 0, 0, 0) {
                Ok(_) => stored.push(key),
                Err(e) => panic!("unexpected error {e}"),
            }
            if s.stats().evictions > 0 {
                break;
            }
        }
        assert!(s.stats().evictions > 0, "never hit eviction");
        // the very first key must be the evicted one (coldest)
        let mut miss_gets = s.stats().gets;
        assert!(s.get(b"key-000", 0).is_none());
        miss_gets += 1;
        assert_eq!(s.stats().gets, miss_gets);
        // the newest key is present
        let last = stored.last().unwrap().clone();
        assert!(s.get(last.as_bytes(), 0).is_some());
    }

    #[test]
    fn get_promotes_item_out_of_eviction_order() {
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 1 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let val = vec![1u8; 60 << 10];
        // derive the exact per-page chunk capacity of the class this item
        // lands in, so the fill stops exactly at capacity
        let mut probe = SlabAllocator::new(SlabConfig {
            mem_limit: 1 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let item_total = 2 + 3 + val.len();
        let class = probe.class_for(item_total).unwrap();
        let capacity = (1 << 20) / probe.chunk_size(class);
        let _ = probe.alloc(item_total).unwrap();
        for i in 0..capacity {
            s.set(
                format!("k{i:02}").as_bytes(),
                Bytes::from(val.clone()),
                0,
                0,
                0,
            )
            .unwrap();
        }
        assert_eq!(s.stats().evictions, 0, "fill overshot capacity");
        // promote k00, then insert more to force evictions
        assert!(s.get(b"k00", 0).is_some());
        for i in capacity..capacity + 3 {
            s.set(
                format!("k{i:02}").as_bytes(),
                Bytes::from(val.clone()),
                0,
                0,
                0,
            )
            .unwrap();
        }
        assert!(s.stats().evictions >= 3);
        // k00 survived thanks to promotion; k01 (the new tail) did not
        assert!(s.get(b"k00", 0).is_some(), "promoted item was evicted");
        assert!(s.get(b"k01", 0).is_none(), "cold item survived eviction");
    }

    #[test]
    fn too_large_rejected() {
        let mut s = store_mb(4);
        let huge = vec![0u8; (1 << 20) + 1];
        assert_eq!(
            s.set(b"k", Bytes::from(huge), 0, 0, 0).unwrap_err(),
            KvError::TooLarge
        );
    }

    #[test]
    fn bytes_accounting_tracks_live_payload() {
        let mut s = store_mb(4);
        s.set(b"abc", Bytes::from_static(b"0123456789"), 0, 0, 0)
            .unwrap();
        assert_eq!(s.stats().bytes, 13);
        s.set(b"abc", Bytes::from_static(b"01"), 0, 0, 0).unwrap();
        assert_eq!(s.stats().bytes, 5);
        s.delete(b"abc");
        assert_eq!(s.stats().bytes, 0);
    }

    #[test]
    fn incr_decr_semantics() {
        let mut s = store_mb(4);
        s.set(b"n", Bytes::from_static(b"41"), 5, 0, 0).unwrap();
        assert_eq!(s.incr(b"n", 1, 0).unwrap(), 42);
        assert_eq!(s.decr(b"n", 40, 0).unwrap(), 2);
        // floor at zero, memcached-style
        assert_eq!(s.decr(b"n", 10, 0).unwrap(), 0);
        // flags preserved through the rewrite
        assert_eq!(s.get(b"n", 0).unwrap().flags, 5);
        assert_eq!(s.incr(b"missing", 1, 0).unwrap_err(), KvError::NotFound);
        s.set(b"text", Bytes::from_static(b"abc"), 0, 0, 0).unwrap();
        assert_eq!(s.incr(b"text", 1, 0).unwrap_err(), KvError::NonNumeric);
    }

    #[test]
    fn append_prepend_semantics() {
        let mut s = store_mb(4);
        s.set(b"k", Bytes::from_static(b"mid"), 3, 0, 0).unwrap();
        s.append(b"k", b"-end", 0).unwrap();
        s.prepend(b"k", b"start-", 0).unwrap();
        let v = s.get(b"k", 0).unwrap();
        assert_eq!(&v.data[..], b"start-mid-end");
        assert_eq!(v.flags, 3);
        assert_eq!(s.append(b"nope", b"x", 0).unwrap_err(), KvError::NotFound);
    }

    #[test]
    fn pinned_items_skip_eviction_and_account() {
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 1 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let val = vec![0x5au8; 60 << 10];
        s.set(b"pinned", Bytes::from(val.clone()), 0, 0, 0).unwrap();
        s.pin(b"pinned", 0).unwrap();
        s.pin(b"pinned", 0).unwrap(); // idempotent
        assert_eq!(s.stats().pinned_items, 1);
        assert_eq!(s.stats().pinned_bytes, 6 + (60 << 10) as u64);
        assert_eq!(s.pin(b"missing", 0).unwrap_err(), KvError::NotFound);
        // flood the class: the pinned item is the coldest, yet survives
        for i in 0..60 {
            let _ = s.set(
                format!("filler-{i:02}").as_bytes(),
                Bytes::from(val.clone()),
                0,
                0,
                0,
            );
        }
        assert!(s.stats().evictions > 0, "pressure never evicted");
        assert!(s.get(b"pinned", 0).is_some(), "pinned item was evicted");
        // overwrite keeps the pin, unpin makes it evictable again
        s.set(b"pinned", Bytes::from(val.clone()), 9, 0, 0).unwrap();
        assert_eq!(s.stats().pinned_items, 1);
        s.unpin(b"pinned").unwrap();
        assert_eq!(s.stats().pinned_items, 0);
        assert_eq!(s.stats().pinned_bytes, 0);
        for i in 60..120 {
            let _ = s.set(
                format!("filler-{i:02}").as_bytes(),
                Bytes::from(val.clone()),
                0,
                0,
                0,
            );
        }
        assert!(s.get(b"pinned", 0).is_none(), "unpinned item never evicted");
        // deleting a pinned item keeps accounting consistent
        s.set(b"p2", Bytes::from(val.clone()), 0, 0, 0).unwrap();
        s.pin(b"p2", 0).unwrap();
        assert!(s.delete(b"p2"));
        assert_eq!(s.stats().pinned_items, 0);
        assert_eq!(s.stats().pinned_bytes, 0);
    }

    #[test]
    fn all_pinned_class_reports_out_of_memory() {
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 1 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let val = vec![7u8; 60 << 10];
        let mut i = 0;
        loop {
            let key = format!("k{i:02}");
            match s.set(key.as_bytes(), Bytes::from(val.clone()), 0, 0, 0) {
                Ok(_) => s.pin(key.as_bytes(), 0).unwrap(),
                Err(KvError::OutOfMemory) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            i += 1;
            assert!(i < 100, "never ran out of memory");
        }
        assert_eq!(s.stats().evictions, 0, "a pinned item was evicted");
        // every pinned value is still intact
        for j in 0..i {
            assert!(s.get(format!("k{j:02}").as_bytes(), 0).is_some());
        }
    }

    #[test]
    fn corrupt_resident_flips_selected_bytes_silently() {
        let mut s = store_mb(4);
        for i in 0..8 {
            s.set(
                format!("key-{i}").as_bytes(),
                Bytes::from(vec![i as u8; 64]),
                0,
                0,
                0,
            )
            .unwrap();
        }
        let before = s.stats();
        // corrupt every other value (sorted-key order), flipping byte 3
        let mut n = 0;
        let hit = s.corrupt_resident(|_len| {
            n += 1;
            (n % 2 == 1).then_some((3, 0x40))
        });
        assert_eq!(hit, 4);
        let after = s.stats();
        assert_eq!(before.sets, after.sets);
        assert_eq!(before.bytes, after.bytes);
        let corrupted = (0..8)
            .filter(|i| {
                let v = s.get(format!("key-{i}").as_bytes(), 0).unwrap();
                v.data[3] != i.to_owned() as u8
            })
            .count();
        assert_eq!(corrupted, 4);
    }

    #[test]
    fn many_items_roundtrip_under_pressure() {
        let mut s = store_mb(8);
        let n = 2000;
        for i in 0..n {
            let key = format!("key-{i}");
            let val = format!("value-{i}").repeat(1 + i % 17);
            s.set(
                key.as_bytes(),
                Bytes::from(val.clone().into_bytes()),
                i as u32,
                0,
                0,
            )
            .unwrap();
        }
        let mut live = 0;
        for i in 0..n {
            let key = format!("key-{i}");
            if let Some(v) = s.get(key.as_bytes(), 0) {
                assert_eq!(
                    &v.data[..],
                    format!("value-{i}").repeat(1 + i % 17).as_bytes()
                );
                assert_eq!(v.flags, i as u32);
                live += 1;
            }
        }
        assert_eq!(live as u64, s.stats().items);
        assert!(live > 0);
    }

    #[test]
    fn tenant_bytes_tracks_ownership_across_overwrite_and_delete() {
        let mut s = store_mb(4);
        s.set_as(7, b"k1", Bytes::from_static(b"0123456789"), 0, 0, 0)
            .unwrap();
        assert_eq!(s.tenant_bytes(7), 12);
        // untenanted rewrite preserves ownership (append/incr path)
        s.append(b"k1", b"xy", 0).unwrap();
        assert_eq!(s.tenant_bytes(7), 14);
        // a different tenant's overwrite transfers ownership
        s.set_as(8, b"k1", Bytes::from_static(b"ab"), 0, 0, 0)
            .unwrap();
        assert_eq!(s.tenant_bytes(7), 0);
        assert_eq!(s.tenant_bytes(8), 4);
        s.delete(b"k1");
        assert_eq!(s.tenant_bytes(8), 0);
        // untenanted items are untracked
        s.set(b"k2", Bytes::from_static(b"v"), 0, 0, 0).unwrap();
        assert_eq!(s.tenant_bytes(0), 0);
    }

    #[test]
    fn floor_blocks_cross_tenant_eviction_but_not_self_eviction() {
        let mut s = KvStore::new(SlabConfig {
            mem_limit: 1 << 20,
            page_size: 1 << 20,
            chunk_min: 96,
            growth: 1.25,
            materialize: true,
        });
        let val = vec![0x5au8; 60 << 10];
        let size = (6 + val.len()) as u64;
        s.set_as(2, b"victim", Bytes::from(val.clone()), 0, 0, 0)
            .unwrap();
        s.set_tenant_floor(size); // tenant 2 may never drop below one item
        for i in 0..40 {
            let _ = s.set_as(
                3,
                format!("flood-{i:02}").as_bytes(),
                Bytes::from(val.clone()),
                0,
                0,
                0,
            );
        }
        assert!(s.stats().evictions > 0, "flood never hit pressure");
        assert!(
            s.get(b"victim", 0).is_some(),
            "floor-protected item was evicted by another tenant"
        );
        assert!(s.floor_denied() > 0);
        // the same tenant may still evict its own coldest item
        let denied = s.floor_denied();
        s.set_as(2, b"victim2", Bytes::from(val.clone()), 0, 0, 0)
            .unwrap();
        s.set_as(2, b"victim3", Bytes::from(val.clone()), 0, 0, 0)
            .unwrap();
        assert_eq!(s.floor_denied(), denied, "self-eviction tripped the floor");
    }

    /// Fill a store's whole budget with near-page-sized items at t=0.
    fn calcify(s: &mut KvStore, pages: usize) {
        for i in 0..pages {
            s.set(
                format!("big{i}").as_bytes(),
                Bytes::from(vec![0u8; (1 << 20) - 100]),
                0,
                0,
                0,
            )
            .unwrap();
        }
    }

    #[test]
    fn without_reclaim_a_shifted_workload_strands_memory() {
        // seed behaviour: pages calcified in the big class are never
        // reassigned, so small sets fail outright
        let mut s = store_mb(4);
        calcify(&mut s, 4);
        assert_eq!(
            s.set(b"small", Bytes::from(vec![1u8; 1000]), 0, 0, 10_000)
                .unwrap_err(),
            KvError::OutOfMemory
        );
    }

    #[test]
    fn pressure_reclaims_idle_class_pages() {
        let mut s = store_mb(4);
        s.set_reclaim_idle(1_000);
        calcify(&mut s, 4);
        let big_class = s.slab().class_for(2 + 4 + (1 << 20) - 100).unwrap();
        assert_eq!(s.slab().pages_in(big_class), 4);
        // the workload shifts to small values after the idle window
        let now = 10_000;
        for i in 0..100 {
            s.set(
                format!("small{i}").as_bytes(),
                Bytes::from(vec![1u8; 1000]),
                0,
                0,
                now,
            )
            .unwrap();
        }
        let st = s.stats();
        assert!(st.reclaimed_pages >= 1, "pressure must retire idle pages");
        assert_eq!(st.reclaim_evictions, st.reclaimed_pages); // 1 item/page here
        assert!(s.slab().pages_in(big_class) < 4);
        for i in 0..100 {
            assert!(s.get(format!("small{i}").as_bytes(), now).is_some());
        }
    }

    #[test]
    fn sweep_reclaims_only_fully_free_pages() {
        let mut s = store_mb(4);
        s.set_reclaim_idle(1_000);
        calcify(&mut s, 4);
        s.delete(b"big0");
        s.delete(b"big1");
        assert_eq!(s.reclaim_idle_pages(10_000), 2);
        // live residents are untouched by the sweep
        assert_eq!(s.stats().reclaim_evictions, 0);
        assert!(s.get(b"big2", 10_000).is_some());
        assert!(s.get(b"big3", 10_000).is_some());
        assert_eq!(s.memory_used(), 2 << 20);
        // before the idle window nothing is reclaimable
        let mut fresh = store_mb(2);
        fresh.set_reclaim_idle(1_000_000);
        calcify(&mut fresh, 2);
        fresh.delete(b"big0");
        assert_eq!(fresh.reclaim_idle_pages(500), 0);
    }

    #[test]
    fn reclaim_never_touches_pinned_pages() {
        let mut s = store_mb(2);
        s.set_reclaim_idle(1_000);
        calcify(&mut s, 2);
        s.pin(b"big0", 0).unwrap();
        let now = 10_000;
        // pressure may only reclaim the unpinned page
        s.set(b"small0", Bytes::from(vec![1u8; 1000]), 0, 0, now)
            .unwrap();
        assert!(s.get(b"big0", now).is_some(), "pinned item must survive");
        assert_eq!(s.stats().reclaimed_pages, 1);
        // with only the pinned page left, further pressure hits OOM
        // rather than dropping protected data
        let mut filled = 0u32;
        while filled <= 10_000
            && s.set(
                format!("fill{filled}").as_bytes(),
                Bytes::from(vec![1u8; 1000]),
                0,
                0,
                now,
            )
            .is_ok()
        {
            filled += 1;
        }
        assert!(s.get(b"big0", now).is_some());
    }
}
