//! The KV client: ketama routing across servers, cached connections, a
//! pool of pre-registered buffers, and the hybrid payload protocol.
//!
//! * values ≤ `inline_max` travel inline in the SEND frame;
//! * larger SET payloads are staged in a pooled registered buffer and the
//!   server RDMA-READs them (one round trip, zero-copy);
//! * GETs hand the server a pooled buffer to RDMA-WRITE large values into.
//!
//! ## Resilience
//!
//! With [`KvClientConfig::replication`] > 1, every SET is written to the
//! first `r` distinct servers clockwise from the key's ring position
//! ([`HashRing::route_n`]) and succeeds only if *all* replicas stored it —
//! a failed replicated SET tells the caller durability is not met, so the
//! burst buffer can fall back to its direct-to-Lustre path. GETs read the
//! primary and fail over to the remaining replicas; a miss is only
//! definitive once every reachable replica has missed (a crashed-and-
//! restarted primary comes back empty, so its miss proves nothing).
//!
//! Every exchange is bounded by [`KvClientConfig::op_timeout`] and retried
//! up to [`KvClientConfig::max_retries`] times with exponential backoff.
//! Backoff jitter is drawn from a [`SimRng`] seeded by the client's node id
//! — never from wall clock — so runs are reproducible. Retries and
//! failovers are counted in the `kv.retry.*` / `kv.failover.*` metric
//! families (shared across all clients on one simulation).
//!
//! ## Elastic membership
//!
//! Routing consults a shared [`Membership`] view on every operation, so
//! servers can join or drain mid-run. The replication cap follows the
//! *live* active count (not the construction-time roster), an epoch bump
//! observed mid-operation triggers one transparent re-resolve + retry
//! against the new ring (`kv.epoch.retries`), and once the view has ever
//! changed (epoch > 0) a definitive miss falls back to scanning the full
//! roster — chunks written under an old ring and not yet migrated are
//! still found on their previous owners (`kv.epoch.fallback_reads`).
//! Deployments that never change membership stay at epoch 0 and behave
//! exactly as before.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use simkit::stats::Histogram;
use simkit::sync::semaphore::Semaphore;
use simkit::telemetry::Counter;
use simkit::SimRng;

use netsim::NodeId;
use rdmasim::{Mr, Qp, RdmaError, RdmaStack};

use crate::membership::Membership;
use crate::proto::{Carrier, ProtoError, Request, Response};
use crate::server::KvServer;
use crate::store::{KvError, KvStats, Value};

/// Client-side failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// Store-level error surfaced by the server.
    Kv(KvError),
    /// Transport failure (connection, one-sided op).
    Rdma(RdmaError),
    /// Malformed response frame.
    Proto(ProtoError),
    /// The client was built with no servers.
    NoServers,
    /// The server reported a failed one-sided transfer.
    TransferFailed,
    /// The operation exceeded [`KvClientConfig::op_timeout`].
    Timeout,
    /// The server rejected the op under per-tenant admission control.
    /// Never retried at the transport layer — the offered load is the
    /// problem, not the exchange.
    Throttled,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Kv(e) => write!(f, "kv error: {e}"),
            ClientError::Rdma(e) => write!(f, "rdma error: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::NoServers => f.write_str("no kv servers configured"),
            ClientError::TransferFailed => f.write_str("server-side transfer failed"),
            ClientError::Timeout => f.write_str("kv operation timed out"),
            ClientError::Throttled => f.write_str("rejected by tenant admission control"),
        }
    }
}
impl std::error::Error for ClientError {}

impl From<RdmaError> for ClientError {
    fn from(e: RdmaError) -> Self {
        ClientError::Rdma(e)
    }
}
impl From<KvError> for ClientError {
    fn from(e: KvError) -> Self {
        ClientError::Kv(e)
    }
}
impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct KvClientConfig {
    /// Largest payload carried inline in a SEND frame.
    pub inline_max: usize,
    /// Registered buffers in the pool (0 disables one-sided transfers).
    pub pool_bufs: usize,
    /// Size of each pooled buffer; also the largest one-sided payload.
    pub buf_size: u64,
    /// Virtual nodes per server on the hash ring.
    pub vnodes: u32,
    /// Replicas per key (`r`): SETs go to the first `r` distinct servers
    /// clockwise on the ring, GETs fail over across them. `1` = no
    /// replication (capped at the server count).
    pub replication: usize,
    /// Per-attempt deadline; a timed-out exchange poisons its connection
    /// (the abandoned response could desync the queue pair) and retries.
    pub op_timeout: std::time::Duration,
    /// Retries per replica after the first attempt (transport errors and
    /// timeouts only — store-level errors are never retried).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: std::time::Duration,
    /// Backoff ceiling.
    pub backoff_max: std::time::Duration,
    /// Tenant tag carried on every traced op (0 = untagged). Only
    /// consumed by the request tracer — per-tenant latency series appear
    /// under `rkv.lat.{class}.tenant{T}.e2e` when tracing is enabled.
    pub tenant: u32,
}

impl Default for KvClientConfig {
    fn default() -> Self {
        KvClientConfig {
            inline_max: 8 << 10,
            pool_bufs: 4,
            buf_size: 1 << 20,
            vnodes: 160,
            replication: 1,
            op_timeout: std::time::Duration::from_secs(1),
            max_retries: 3,
            backoff_base: std::time::Duration::from_micros(100),
            backoff_max: std::time::Duration::from_millis(5),
            tenant: 0,
        }
    }
}

/// Cumulative client-side metrics.
#[derive(Default)]
pub struct ClientStats {
    /// SET operations issued.
    pub sets: u64,
    /// GET operations issued.
    pub gets: u64,
    /// GETs that returned a value.
    pub hits: u64,
    /// SET latency distribution.
    pub set_lat: Histogram,
    /// GET latency distribution.
    pub get_lat: Histogram,
}

struct BufPool {
    stack: Rc<RdmaStack>,
    node: NodeId,
    buf_size: u64,
    free: RefCell<Vec<Mr>>,
    created: Cell<usize>,
    gate: Semaphore,
}

struct PooledBuf {
    mr: Option<Mr>,
    pool: Rc<BufPool>,
}

impl std::ops::Deref for PooledBuf {
    type Target = Mr;
    fn deref(&self) -> &Mr {
        self.mr.as_ref().expect("buffer taken")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(mr) = self.mr.take() {
            self.pool.free.borrow_mut().push(mr);
        }
        self.pool.gate.release_extra(1);
    }
}

impl BufPool {
    async fn acquire(self: &Rc<Self>) -> PooledBuf {
        let permit = self.gate.acquire().await;
        permit.forget(); // returned via PooledBuf::drop
        let mr = {
            let existing = self.free.borrow_mut().pop();
            match existing {
                Some(mr) => mr,
                None => {
                    self.created.set(self.created.get() + 1);
                    self.stack.register(self.node, self.buf_size).await
                }
            }
        };
        PooledBuf {
            mr: Some(mr),
            pool: Rc::clone(self),
        }
    }
}

/// A connected KV client bound to one fabric node.
pub struct KvClient {
    node: NodeId,
    stack: Rc<RdmaStack>,
    config: KvClientConfig,
    view: Rc<Membership>,
    conns: RefCell<HashMap<usize, Rc<Conn>>>,
    pool: Rc<BufPool>,
    stats: RefCell<ClientStats>,
    jitter: SimRng,
    res: ResCounters,
    observer: RefCell<Option<ObserverFn>>,
}

/// A test-only per-operation history observer ([`KvClient::set_observer`]).
pub type ObserverFn = Rc<dyn Fn(OpRecord)>;

/// One logical, client-visible KV operation, as delivered to the
/// test-only history observer ([`KvClient::set_observer`]): a single
/// record per `set`/`get`/`delete` call, emitted after replication,
/// retries, and failover have resolved. Value identity is carried as an
/// FNV-1a hash so recorders never hold payload bytes.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The key the operation addressed.
    pub key: Bytes,
    /// What the operation did (and the value identity it saw or wrote).
    pub kind: OpKind,
    /// Virtual time the operation was issued.
    pub start: simkit::Time,
    /// Virtual time the operation returned to the caller.
    pub end: simkit::Time,
    /// Whether the call returned `Ok`. A failed operation may or may not
    /// have taken effect on some replicas — checkers must treat its
    /// write as indeterminate (allowed but not required to be visible).
    pub ok: bool,
}

/// What an observed operation did. Hashes are FNV-1a over value bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A replicated store of a value with this hash.
    Set {
        /// FNV-1a hash of the stored bytes.
        hash: u64,
    },
    /// A failover read; `None` means a definitive miss.
    Get {
        /// FNV-1a hash of the returned bytes, if any.
        hash: Option<u64>,
    },
    /// A replicated delete.
    Delete {
        /// Whether any replica held the key.
        found: bool,
    },
}

/// `kv.retry.*` / `kv.failover.*` / `kv.epoch.*` counters (get-or-create:
/// every client on one simulation bumps the same instances).
struct ResCounters {
    retry_attempts: Counter,
    retry_timeouts: Counter,
    retry_exhausted: Counter,
    failover_reads: Counter,
    failover_exhausted: Counter,
    epoch_retries: Counter,
    epoch_fallback: Counter,
}

struct Conn {
    qp: Qp,
    lock: Semaphore,
    /// Set when an op timed out mid-exchange on this queue pair: the
    /// abandoned response frame may still arrive, so the next frame read
    /// could belong to the wrong request. Waiters re-check after acquiring
    /// the serialization lock and reconnect instead of using it.
    poisoned: Cell<bool>,
}

impl KvClient {
    /// Build a client on `node` addressing a fixed set of `servers`. The
    /// client owns a private [`Membership`] view, so behaviour matches the
    /// pre-elastic client exactly; deployments that grow or shrink the
    /// ring at runtime share one view via [`KvClient::with_view`].
    pub fn new(
        stack: Rc<RdmaStack>,
        node: NodeId,
        servers: Vec<Rc<KvServer>>,
        config: KvClientConfig,
    ) -> Rc<KvClient> {
        let view = Membership::new(servers, config.vnodes.max(1));
        Self::with_view(stack, node, view, config)
    }

    /// Build a client routing through a shared membership `view`. Every
    /// client (and the burst-buffer manager) holding the same view sees
    /// joins and drains at the same virtual instant.
    pub fn with_view(
        stack: Rc<RdmaStack>,
        node: NodeId,
        view: Rc<Membership>,
        config: KvClientConfig,
    ) -> Rc<KvClient> {
        let m = stack.sim().metrics();
        let res = ResCounters {
            retry_attempts: m.counter("kv.retry.attempts"),
            retry_timeouts: m.counter("kv.retry.timeouts"),
            retry_exhausted: m.counter("kv.retry.exhausted"),
            failover_reads: m.counter("kv.failover.reads"),
            failover_exhausted: m.counter("kv.failover.exhausted"),
            epoch_retries: m.counter("kv.epoch.retries"),
            epoch_fallback: m.counter("kv.epoch.fallback_reads"),
        };
        Rc::new(KvClient {
            node,
            stack: Rc::clone(&stack),
            config,
            view,
            conns: RefCell::new(HashMap::new()),
            pool: Rc::new(BufPool {
                stack,
                node,
                buf_size: config.buf_size,
                free: RefCell::new(Vec::new()),
                created: Cell::new(0),
                gate: Semaphore::new(config.pool_bufs.max(1)),
            }),
            stats: RefCell::new(ClientStats::default()),
            // backoff jitter: seeded by node id, never wall clock, so a
            // run is reproducible from (program, seeds) alone
            jitter: SimRng::seed_from(0x6b76_7274 ^ u64::from(node.0)),
            res,
            observer: RefCell::new(None),
        })
    }

    /// Install a test-only observer that receives one [`OpRecord`] per
    /// logical `set`/`get`/`delete` call on this client. Consistency
    /// checkers use this to build a per-key history; when no observer is
    /// installed the hot paths pay nothing beyond a `borrow`.
    pub fn set_observer(&self, obs: Rc<dyn Fn(OpRecord)>) {
        *self.observer.borrow_mut() = Some(obs);
    }

    fn observe(&self, key: &[u8], kind: OpKind, start: simkit::Time, ok: bool) {
        let obs = self.observer.borrow().clone();
        if let Some(obs) = obs {
            obs(OpRecord {
                key: Bytes::copy_from_slice(key),
                kind,
                start,
                end: self.stack.sim().now(),
                ok,
            });
        }
    }

    /// The client's fabric node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of servers currently active on the ring.
    pub fn server_count(&self) -> usize {
        self.view.active_len()
    }

    /// The shared membership view this client routes through.
    pub fn view(&self) -> &Rc<Membership> {
        &self.view
    }

    /// Which server (roster index) owns `key` on the live ring.
    pub fn route(&self, key: &[u8]) -> Result<usize, ClientError> {
        self.view.route(key).ok_or(ClientError::NoServers)
    }

    /// Fabric node of the server owning `key`.
    pub fn route_node(&self, key: &[u8]) -> Result<NodeId, ClientError> {
        Ok(self.view.server(self.route(key)?).node())
    }

    /// The key's replica set: first `replication` distinct active servers
    /// clockwise on the live ring (the cap tracks the *current* active
    /// count, so `r` grows when servers join); element 0 is the primary
    /// ([`KvClient::route`]).
    pub fn replicas(&self, key: &[u8]) -> Result<Vec<usize>, ClientError> {
        let reps = self.view.route_n(key, self.config.replication.max(1));
        if reps.is_empty() {
            return Err(ClientError::NoServers);
        }
        Ok(reps)
    }

    /// Snapshot client metrics (by reference to avoid a histogram copy).
    pub fn with_stats<R>(&self, f: impl FnOnce(&ClientStats) -> R) -> R {
        f(&self.stats.borrow())
    }

    async fn conn(&self, server_idx: usize) -> Result<Rc<Conn>, ClientError> {
        if let Some(c) = self.conns.borrow().get(&server_idx) {
            if c.qp.is_connected() {
                return Ok(Rc::clone(c));
            }
        }
        // (re)connect
        let server = self.view.server(server_idx);
        let qp = server.accept(self.node).await?;
        // tenanted clients tag the fresh connection before any op rides
        // it (one hello per connect; tenant 0 clients skip it entirely),
        // so per-connection tenancy survives reconnects
        if self.config.tenant != 0 {
            let hello = Request::SetTenant {
                tenant: self.config.tenant,
            };
            qp.send_tagged(hello.encode(), None).await?;
            let frame = qp.recv().await?;
            match Response::decode(frame)? {
                Response::Ok => {}
                other => return Err(Self::unexpected(other)),
            }
        }
        let conn = Rc::new(Conn {
            qp,
            lock: Semaphore::new(1),
            poisoned: Cell::new(false),
        });
        self.conns.borrow_mut().insert(server_idx, Rc::clone(&conn));
        Ok(conn)
    }

    /// The traced-op class of a request.
    fn op_class(req: &Request) -> &'static str {
        match req {
            Request::Get { .. } => "get",
            Request::Set { .. } => "set",
            Request::MultiGet { .. } => "multi_get",
            _ => "other",
        }
    }

    /// One request/response exchange on the connection to `server_idx`.
    /// `op` (when tracing) gets `client_queue` stamped once the
    /// connection is acquired and `net_back` when the response frame
    /// lands; the request rides the queue pair tagged so the server can
    /// stamp its internal stages onto the same op.
    async fn exchange_at(
        &self,
        server_idx: usize,
        req: Request,
        op: Option<simkit::OpId>,
    ) -> Result<Response, ClientError> {
        let conn = self.conn(server_idx).await?;
        let _serial = conn.lock.acquire().await;
        if conn.poisoned.get() {
            // an earlier op timed out mid-exchange on this qp; a stale
            // response may be in flight, so the channel can't be trusted
            self.drop_conn(server_idx, &conn);
            return Err(ClientError::Rdma(RdmaError::Disconnected));
        }
        self.stack.sim().op_stamp(op, "client_queue");
        let r = async {
            conn.qp.send_tagged(req.encode(), op).await?;
            let frame = conn.qp.recv().await?;
            Ok::<_, RdmaError>(frame)
        }
        .await;
        match r {
            Ok(frame) => {
                self.stack.sim().op_stamp(op, "net_back");
                Ok(Response::decode(frame)?)
            }
            Err(e) => {
                // connection is broken: drop it so the next op reconnects
                self.drop_conn(server_idx, &conn);
                Err(e.into())
            }
        }
    }

    /// Remove `conn` from the cache if it is still the cached entry for
    /// `server_idx` (a reconnect may already have replaced it).
    fn drop_conn(&self, server_idx: usize, conn: &Rc<Conn>) {
        let mut conns = self.conns.borrow_mut();
        if conns.get(&server_idx).is_some_and(|c| Rc::ptr_eq(c, conn)) {
            conns.remove(&server_idx);
        }
    }

    /// One deadline-bounded attempt. A timeout abandons the exchange
    /// mid-flight, so the connection is poisoned and dropped.
    async fn exchange_once(
        &self,
        server_idx: usize,
        req: Request,
    ) -> Result<Response, ClientError> {
        let sim = self.stack.sim().clone();
        // one traced op per attempt: a retry is a new op, and an attempt
        // that errors or times out is aborted so half-stamped records
        // never pollute the latency series
        let op = sim.op_begin("rkv", Self::op_class(&req), self.config.tenant);
        sim.optrace().annotate_server(op, server_idx as u32);
        match simkit::future::timeout(
            &sim,
            self.config.op_timeout,
            self.exchange_at(server_idx, req, op),
        )
        .await
        {
            Some(r) => {
                if r.is_ok() {
                    sim.op_finish(op);
                } else {
                    sim.optrace().abort(op);
                }
                r
            }
            None => {
                sim.optrace().abort(op);
                self.res.retry_timeouts.inc();
                sim.flight_record("rkv.client", "poison", || {
                    format!("node={} server={server_idx} op timeout", self.node.0)
                });
                if let Some(c) = self.conns.borrow().get(&server_idx) {
                    c.poisoned.set(true);
                }
                self.conns.borrow_mut().remove(&server_idx);
                Err(ClientError::Timeout)
            }
        }
    }

    /// Whether `e` is worth retrying: transport-level failures, timeouts
    /// and malformed frames (a transfer-corrupted response decodes to
    /// garbage; a fresh exchange of an idempotent op is safe), never
    /// store-level outcomes.
    fn retryable(e: &ClientError) -> bool {
        matches!(
            e,
            ClientError::Rdma(_)
                | ClientError::Timeout
                | ClientError::TransferFailed
                | ClientError::Proto(_)
        )
    }

    /// Exchange with bounded exponential backoff: up to `max_retries`
    /// re-attempts on retryable errors, delay doubling from `backoff_base`
    /// to `backoff_max`, jittered from the client's seeded RNG.
    async fn exchange_retry(
        &self,
        server_idx: usize,
        req: &Request,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.exchange_once(server_idx, req.clone()).await {
                Err(e) if Self::retryable(&e) => {
                    if attempt >= self.config.max_retries {
                        self.res.retry_exhausted.inc();
                        self.stack
                            .sim()
                            .flight_record("rkv.client", "retry_exhausted", || {
                                format!("node={} server={server_idx} err={e:?}", self.node.0)
                            });
                        return Err(e);
                    }
                    self.stack.sim().flight_record("rkv.client", "retry", || {
                        format!(
                            "node={} server={server_idx} attempt={attempt} err={e:?}",
                            self.node.0
                        )
                    });
                    let exp = self
                        .config
                        .backoff_base
                        .saturating_mul(1u32 << attempt.min(20));
                    let delay = exp.min(self.config.backoff_max);
                    // jitter in [0.5, 1.0) of the nominal delay
                    let jittered = delay.mul_f64(0.5 + 0.5 * self.jitter.f64());
                    attempt += 1;
                    self.res.retry_attempts.inc();
                    self.stack.sim().sleep(jittered).await;
                }
                other => return other,
            }
        }
    }

    /// Exchange with the key's primary server (retrying), used by the
    /// single-copy ops that have no replicated semantics.
    async fn exchange(&self, key: &[u8], req: Request) -> Result<Response, ClientError> {
        let idx = self.route(key)?;
        self.exchange_retry(idx, &req).await
    }

    /// Exchange a store-family request, re-sending (bounded) when the
    /// server rejects the payload with [`Response::BadDigest`] — the
    /// payload was damaged in flight and the client still holds the good
    /// copy, so a re-send is the repair.
    async fn store_exchange(
        &self,
        server_idx: usize,
        req: &Request,
    ) -> Result<Response, ClientError> {
        let mut tries = 0u32;
        loop {
            match self.exchange_retry(server_idx, req).await {
                Ok(Response::BadDigest) if tries < self.config.max_retries => {
                    tries += 1;
                    self.res.retry_attempts.inc();
                }
                r => return r,
            }
        }
    }

    fn use_one_sided(&self, len: usize) -> bool {
        self.config.pool_bufs > 0
            && len > self.config.inline_max
            && (len as u64) <= self.config.buf_size
    }

    /// Store `value` under `key` on every replica. Returns the primary's
    /// CAS token. Succeeds only if *all* `replication` replicas stored the
    /// value — a partial write surfaces the first failure so the caller
    /// knows the durability target was not met (surviving copies are still
    /// readable via failover). A membership-epoch bump observed while the
    /// write was in flight triggers one transparent re-resolve against the
    /// new ring (a drained replica erroring mid-set is not a real failure
    /// if its successor stores the value).
    pub async fn set(
        &self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
    ) -> Result<u64, ClientError> {
        let t0 = self.stack.sim().now();
        let obs_hash = self
            .observer
            .borrow()
            .is_some()
            .then(|| crate::hash::fnv1a(&value));
        // one staged buffer serves every replica (and every epoch-retry
        // round): writes go out one at a time, and the server only READs
        // during its own exchange
        let buf = if self.use_one_sided(value.len()) {
            let buf = self.pool.acquire().await;
            buf.write_local(0, &value)?;
            Some(buf)
        } else {
            None
        };
        let mut epoch = self.view.epoch();
        let mut epoch_retried = false;
        let cas_out = loop {
            let replicas = self.replicas(key)?;
            let mut cas_out = None;
            let mut first_err = None;
            for idx in replicas {
                let req = Request::Set {
                    key: Bytes::copy_from_slice(key),
                    flags,
                    expire_at,
                    value: match &buf {
                        Some(b) => Carrier::Remote {
                            src: b.remote().into(),
                            len: value.len() as u32,
                        },
                        None => Carrier::Inline(value.clone()),
                    },
                };
                match self.store_exchange(idx, &req).await {
                    Ok(Response::Stored { cas }) => {
                        cas_out.get_or_insert(cas);
                    }
                    Ok(other) => {
                        first_err.get_or_insert(Self::unexpected(other));
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
            match first_err {
                None => break cas_out,
                Some(e) => {
                    let live = self.view.epoch();
                    if live != epoch && !epoch_retried {
                        epoch = live;
                        epoch_retried = true;
                        self.res.epoch_retries.inc();
                        continue;
                    }
                    drop(buf);
                    if let Some(h) = obs_hash {
                        self.observe(key, OpKind::Set { hash: h }, t0, false);
                    }
                    return Err(e);
                }
            }
        };
        drop(buf);
        let mut st = self.stats.borrow_mut();
        st.sets += 1;
        st.set_lat.record(self.stack.sim().now() - t0);
        drop(st);
        if let Some(h) = obs_hash {
            self.observe(key, OpKind::Set { hash: h }, t0, true);
        }
        Ok(cas_out.expect("no error implies at least one Stored"))
    }

    /// Fetch from one specific server (no failover). Used internally for
    /// failover reads and externally by integrity checkers that need to
    /// inspect each replica's copy independently.
    pub async fn get_from(
        &self,
        server_idx: usize,
        key: &[u8],
    ) -> Result<Option<Value>, ClientError> {
        if self.config.pool_bufs > 0 {
            let buf = self.pool.acquire().await;
            let req = Request::Get {
                key: Bytes::copy_from_slice(key),
                dst: Some(buf.remote().into()),
            };
            match self.exchange_retry(server_idx, &req).await? {
                Response::ValueWritten { len, flags, cas } => Ok(Some(Value {
                    data: buf.read_local(0, len as u64)?,
                    flags,
                    cas,
                })),
                Response::Value { data, flags, cas } => Ok(Some(Value { data, flags, cas })),
                Response::NotFound => Ok(None),
                other => Err(Self::unexpected(other)),
            }
        } else {
            let req = Request::Get {
                key: Bytes::copy_from_slice(key),
                dst: None,
            };
            match self.exchange_retry(server_idx, &req).await? {
                Response::Value { data, flags, cas } => Ok(Some(Value { data, flags, cas })),
                Response::NotFound => Ok(None),
                other => Err(Self::unexpected(other)),
            }
        }
    }

    /// Read-any with failover: try replicas in ring order, return the
    /// first value found. A miss is only definitive once every replica has
    /// been consulted (a crashed-and-restarted server reports misses for
    /// keys it used to hold); `Err` only if every replica failed. Once
    /// membership has ever changed (epoch > 0) a definitive miss widens to
    /// the rest of the roster before being believed: a chunk written under
    /// an old ring and not yet migrated still lives on its previous owner
    /// (possibly a drained server), and the rebalancer deletes old copies
    /// only after the new owners verify, so the widened scan cannot lose.
    async fn get_failover(&self, key: &[u8]) -> Result<Option<Value>, ClientError> {
        let replicas = self.replicas(key)?;
        let mut first_err = None;
        let mut missed = false;
        for (i, idx) in replicas.iter().enumerate() {
            match self.get_from(*idx, key).await {
                Ok(Some(v)) => {
                    if i > 0 {
                        self.res.failover_reads.inc();
                        self.stack
                            .sim()
                            .flight_record("rkv.client", "failover_read", || {
                                format!("node={} replica={i} server={idx}", self.node.0)
                            });
                    }
                    return Ok(Some(v));
                }
                Ok(None) => missed = true,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if self.view.epoch() > 0 {
            for idx in 0..self.view.roster_len() {
                if replicas.contains(&idx) {
                    continue;
                }
                match self.get_from(idx, key).await {
                    Ok(Some(v)) => {
                        self.res.epoch_fallback.inc();
                        return Ok(Some(v));
                    }
                    // a roster miss never makes a miss definitive on its
                    // own — that still takes a replica answering
                    Ok(None) => {}
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        if missed {
            return Ok(None);
        }
        self.res.failover_exhausted.inc();
        Err(first_err.expect("no miss and no value implies an error"))
    }

    /// Fetch `key`. `Ok(None)` on miss (from every reachable replica).
    pub async fn get(&self, key: &[u8]) -> Result<Option<Value>, ClientError> {
        let t0 = self.stack.sim().now();
        let result = match self.get_failover(key).await {
            Ok(r) => r,
            Err(e) => {
                self.observe(key, OpKind::Get { hash: None }, t0, false);
                return Err(e);
            }
        };
        let mut st = self.stats.borrow_mut();
        st.gets += 1;
        if result.is_some() {
            st.hits += 1;
        }
        st.get_lat.record(self.stack.sim().now() - t0);
        drop(st);
        if self.observer.borrow().is_some() {
            let hash = result.as_ref().map(|v| crate::hash::fnv1a(&v.data));
            self.observe(key, OpKind::Get { hash }, t0, true);
        }
        Ok(result)
    }

    /// Store `value` on one specific server, bypassing ring routing — the
    /// scrub/repair path uses this to overwrite a single divergent replica
    /// in place, and relaxed-ack quorum writes use it to address replicas
    /// individually. Observed as a logical set (per-server outcome) so
    /// history checkers can explain later reads of the value. Returns the
    /// server's CAS token.
    pub async fn set_to(
        &self,
        server_idx: usize,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
    ) -> Result<u64, ClientError> {
        let t0 = self.stack.sim().now();
        let obs_hash = self
            .observer
            .borrow()
            .is_some()
            .then(|| crate::hash::fnv1a(&value));
        let buf = if self.use_one_sided(value.len()) {
            let buf = self.pool.acquire().await;
            buf.write_local(0, &value)?;
            Some(buf)
        } else {
            None
        };
        let req = Request::Set {
            key: Bytes::copy_from_slice(key),
            flags,
            expire_at,
            value: match &buf {
                Some(b) => Carrier::Remote {
                    src: b.remote().into(),
                    len: value.len() as u32,
                },
                None => Carrier::Inline(value.clone()),
            },
        };
        let resp = self.store_exchange(server_idx, &req).await;
        drop(buf);
        let out = match resp {
            Ok(Response::Stored { cas }) => Ok(cas),
            Ok(other) => Err(Self::unexpected(other)),
            Err(e) => Err(e),
        };
        if let Some(h) = obs_hash {
            self.observe(key, OpKind::Set { hash: h }, t0, out.is_ok());
        }
        out
    }

    /// Remove `key` from one specific server, bypassing ring routing —
    /// the rebalancer's delete-from-old step after a verified migration.
    /// `Ok(true)` if the server held the key.
    pub async fn delete_from(&self, server_idx: usize, key: &[u8]) -> Result<bool, ClientError> {
        let req = Request::Delete {
            key: Bytes::copy_from_slice(key),
        };
        match self.exchange_retry(server_idx, &req).await? {
            Response::Ok => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Pin `key` on one specific server, bypassing ring routing — used to
    /// carry a pin across a migration before the old owner's copy goes
    /// away. `Ok(true)` iff the server holds (and pinned) the key.
    pub async fn pin_to(&self, server_idx: usize, key: &[u8]) -> Result<bool, ClientError> {
        let req = Request::Pin {
            key: Bytes::copy_from_slice(key),
        };
        match self.exchange_retry(server_idx, &req).await? {
            Response::Ok => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Pin `key` against LRU eviction on every replica. `Ok(true)` iff
    /// every replica holds and pinned the key; `Ok(false)` if any replica
    /// no longer has it (the caller's durability expectation is not met).
    pub async fn pin(&self, key: &[u8]) -> Result<bool, ClientError> {
        let replicas = self.replicas(key)?;
        let req = Request::Pin {
            key: Bytes::copy_from_slice(key),
        };
        let mut all = true;
        let mut first_err = None;
        for idx in replicas {
            match self.exchange_retry(idx, &req).await {
                Ok(Response::Ok) => {}
                Ok(Response::NotFound) => all = false,
                Ok(other) => {
                    first_err.get_or_insert(Self::unexpected(other));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(all)
    }

    /// Best-effort unpin of `key` on every replica. Errors and misses are
    /// swallowed: the only purpose is to let the LRU reclaim the item, and
    /// an unreachable replica will reap it by eviction anyway. Under
    /// elastic membership (epoch > 0) the unpin goes to the whole roster:
    /// a not-yet-migrated copy on an old owner holds its pin otherwise.
    pub async fn unpin(&self, key: &[u8]) {
        let targets = if self.view.epoch() > 0 {
            (0..self.view.roster_len()).collect()
        } else {
            match self.replicas(key) {
                Ok(r) => r,
                Err(_) => return,
            }
        };
        let req = Request::Unpin {
            key: Bytes::copy_from_slice(key),
        };
        for idx in targets {
            let _ = self.exchange_retry(idx, &req).await;
        }
    }

    /// Remove `key` from every replica; `Ok(true)` if any replica held it.
    /// An unreachable replica may keep a stale copy (reaped by expiry or
    /// eviction); the delete still succeeds if any replica answered.
    /// Under elastic membership (epoch > 0) the delete goes to the whole
    /// roster — otherwise a copy surviving on an old owner would be
    /// resurrected by the epoch-fallback read path.
    pub async fn delete(&self, key: &[u8]) -> Result<bool, ClientError> {
        let t0 = self.stack.sim().now();
        let replicas = if self.view.epoch() > 0 {
            let n = self.view.roster_len();
            if n == 0 {
                return Err(ClientError::NoServers);
            }
            (0..n).collect()
        } else {
            self.replicas(key)?
        };
        let req = Request::Delete {
            key: Bytes::copy_from_slice(key),
        };
        let mut existed = false;
        let mut any_ok = false;
        let mut first_err = None;
        for idx in replicas {
            match self.exchange_retry(idx, &req).await {
                Ok(Response::Ok) => {
                    any_ok = true;
                    existed = true;
                }
                Ok(Response::NotFound) => any_ok = true,
                Ok(other) => {
                    first_err.get_or_insert(Self::unexpected(other));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        self.observe(key, OpKind::Delete { found: existed }, t0, any_ok);
        match (any_ok, first_err) {
            (true, _) => Ok(existed),
            (false, Some(e)) => Err(e),
            (false, None) => unreachable!("replicas is never empty"),
        }
    }

    /// Store only if absent.
    pub async fn add(
        &self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
    ) -> Result<u64, ClientError> {
        let req = Request::Add {
            key: Bytes::copy_from_slice(key),
            flags,
            expire_at,
            value: Carrier::Inline(value),
        };
        match self.exchange(key, req).await? {
            Response::Stored { cas } => Ok(cas),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Compare-and-swap.
    pub async fn cas(
        &self,
        key: &[u8],
        value: Bytes,
        flags: u32,
        expire_at: u64,
        cas: u64,
    ) -> Result<u64, ClientError> {
        let req = Request::Cas {
            key: Bytes::copy_from_slice(key),
            flags,
            expire_at,
            cas,
            value: Carrier::Inline(value),
        };
        match self.exchange(key, req).await? {
            Response::Stored { cas } => Ok(cas),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Atomically add `delta` to a numeric value; returns the new value.
    pub async fn incr(&self, key: &[u8], delta: u64) -> Result<u64, ClientError> {
        match self
            .exchange(
                key,
                Request::Incr {
                    key: Bytes::copy_from_slice(key),
                    delta,
                },
            )
            .await?
        {
            Response::Counter { value } => Ok(value),
            Response::NonNumeric => Err(KvError::NonNumeric.into()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Atomically subtract `delta` (floored at zero); returns the new value.
    pub async fn decr(&self, key: &[u8], delta: u64) -> Result<u64, ClientError> {
        match self
            .exchange(
                key,
                Request::Decr {
                    key: Bytes::copy_from_slice(key),
                    delta,
                },
            )
            .await?
        {
            Response::Counter { value } => Ok(value),
            Response::NonNumeric => Err(KvError::NonNumeric.into()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Concatenate `data` after the live value.
    pub async fn append_value(&self, key: &[u8], data: Bytes) -> Result<u64, ClientError> {
        match self
            .exchange(
                key,
                Request::Append {
                    key: Bytes::copy_from_slice(key),
                    data,
                },
            )
            .await?
        {
            Response::Stored { cas } => Ok(cas),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Concatenate `data` before the live value.
    pub async fn prepend_value(&self, key: &[u8], data: Bytes) -> Result<u64, ClientError> {
        match self
            .exchange(
                key,
                Request::Prepend {
                    key: Bytes::copy_from_slice(key),
                    data,
                },
            )
            .await?
        {
            Response::Stored { cas } => Ok(cas),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetch many keys with one batched round trip per owning server, all
    /// servers queried concurrently. Results come back in the order of
    /// `keys` (`None` = miss).
    pub async fn multi_get(
        self: &Rc<Self>,
        keys: &[&[u8]],
    ) -> Result<Vec<Option<Value>>, ClientError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // group by ring owner, preserving original positions
        let mut by_server: HashMap<usize, Vec<(usize, Bytes)>> = HashMap::new();
        for (pos, k) in keys.iter().enumerate() {
            let idx = self.route(k)?;
            by_server
                .entry(idx)
                .or_default()
                .push((pos, Bytes::copy_from_slice(k)));
        }
        let mut out: Vec<Option<Value>> = vec![None; keys.len()];
        let mut server_ids: Vec<usize> = by_server.keys().copied().collect();
        server_ids.sort_unstable();
        let sim = self.stack.sim().clone();
        let mut tasks = Vec::with_capacity(server_ids.len());
        for idx in server_ids {
            let batch = by_server.remove(&idx).expect("grouped above");
            let client = Rc::clone(self);
            tasks.push(sim.spawn(async move {
                let req = Request::MultiGet {
                    keys: batch.iter().map(|(_, k)| k.clone()).collect(),
                };
                // each fan-out leg is its own traced op so the join can
                // attribute the dominant (slowest) leg afterwards
                let sim = client.stack.sim().clone();
                let op = sim.op_begin("rkv", "multi_get", client.config.tenant);
                sim.optrace().annotate_server(op, idx as u32);
                let conn = match client.conn(idx).await {
                    Ok(c) => c,
                    Err(e) => {
                        sim.optrace().abort(op);
                        return Err(e);
                    }
                };
                let _serial = conn.lock.acquire().await;
                sim.op_stamp(op, "client_queue");
                let r = async {
                    conn.qp.send_tagged(req.encode(), op).await?;
                    conn.qp.recv().await
                }
                .await;
                let frame = match r {
                    Ok(f) => f,
                    Err(e) => {
                        sim.optrace().abort(op);
                        client.conns.borrow_mut().remove(&idx);
                        return Err(e.into());
                    }
                };
                sim.op_stamp(op, "net_back");
                let resp = match Response::decode(frame) {
                    Ok(resp) => resp,
                    Err(e) => {
                        sim.optrace().abort(op);
                        return Err(e.into());
                    }
                };
                let finished = sim.op_finish(op);
                match resp {
                    Response::MultiValues { values } => {
                        if values.len() != batch.len() {
                            return Err(ClientError::Proto(ProtoError("multiget arity")));
                        }
                        let pairs: Vec<(usize, Option<Value>)> = batch
                            .into_iter()
                            .zip(values)
                            .map(|((pos, _), v)| {
                                (pos, v.map(|(data, flags, cas)| Value { data, flags, cas }))
                            })
                            .collect();
                        Ok((idx, pairs, finished))
                    }
                    other => Err(Self::unexpected(other)),
                }
            }));
        }
        // join in sorted-server order so the surfaced error is deterministic
        let mut first_err = None;
        let mut legs: Vec<(usize, simkit::optrace::FinishedOp)> = Vec::new();
        for task in tasks {
            match task.await {
                Ok((idx, pairs, finished)) => {
                    for (pos, v) in pairs {
                        out[pos] = v;
                    }
                    if let Some(f) = finished {
                        legs.push((idx, f));
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        // client-side critical path: which server's leg bounded the join
        // (strict > over sorted-server order → ties go to the lower idx),
        // and which of its stages dominated
        if let Some((idx, f)) = legs.iter().fold(
            None::<&(usize, simkit::optrace::FinishedOp)>,
            |best, leg| match best {
                Some(b) if b.1.e2e_ns >= leg.1.e2e_ns => best,
                _ => Some(leg),
            },
        ) {
            let tracer = self.stack.sim().optrace();
            tracer.note_critical(format!("rkv.critpath.multi_get.server{idx}"));
            if let Some((stage, _)) = f.dominant_stage() {
                tracer.note_critical(format!("rkv.critpath.multi_get.stage.{stage}"));
            }
        }
        let r = self
            .config
            .replication
            .max(1)
            .min(self.view.active_len().max(1));
        if (r > 1 || self.view.epoch() > 0)
            && (first_err.is_some() || out.iter().any(Option::is_none))
        {
            // batches only consulted primaries; a failed batch — or a miss
            // against a possibly-restarted-empty primary — may still be
            // served by a replica (or, after a membership change, by an
            // old owner), so unresolved keys fall back to per-key
            // failover reads
            first_err = None;
            for (pos, k) in keys.iter().enumerate() {
                if out[pos].is_none() {
                    match self.get_failover(k).await {
                        Ok(v) => out[pos] = v,
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut st = self.stats.borrow_mut();
        st.gets += keys.len() as u64;
        st.hits += out.iter().filter(|v| v.is_some()).count() as u64;
        Ok(out)
    }

    /// Update expiry of a live item.
    pub async fn touch(&self, key: &[u8], expire_at: u64) -> Result<(), ClientError> {
        match self
            .exchange(
                key,
                Request::Touch {
                    key: Bytes::copy_from_slice(key),
                    expire_at,
                },
            )
            .await?
        {
            Response::Ok => Ok(()),
            Response::NotFound => Err(KvError::NotFound.into()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetch counters from every admitted server (drained ones included).
    pub async fn stats_all(&self) -> Result<Vec<KvStats>, ClientError> {
        let n = self.view.roster_len();
        let mut out = Vec::with_capacity(n);
        for idx in 0..n {
            let conn = self.conn(idx).await?;
            let _serial = conn.lock.acquire().await;
            conn.qp
                .send(Request::Stats.encode())
                .await
                .map_err(ClientError::from)?;
            let frame = conn.qp.recv().await.map_err(ClientError::from)?;
            match Response::decode(frame)? {
                Response::Stats(s) => out.push(s),
                other => return Err(Self::unexpected(other)),
            }
        }
        Ok(out)
    }

    fn unexpected(resp: Response) -> ClientError {
        match resp {
            Response::NotFound => KvError::NotFound.into(),
            Response::Exists => KvError::Exists.into(),
            Response::CasMismatch => KvError::CasMismatch.into(),
            Response::TooLarge => KvError::TooLarge.into(),
            Response::OutOfMemory => KvError::OutOfMemory.into(),
            Response::TransferFailed => ClientError::TransferFailed,
            Response::BadDigest => ClientError::TransferFailed,
            Response::Throttled => ClientError::Throttled,
            _ => ClientError::Proto(ProtoError("unexpected response variant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::KvServerConfig;
    use netsim::{Fabric, NetConfig};
    use simkit::{dur, Sim};

    struct Cluster {
        sim: Sim,
        stack: Rc<RdmaStack>,
        servers: Vec<Rc<KvServer>>,
    }

    fn cluster(n_servers: usize, n_clients: usize) -> Cluster {
        let sim = Sim::new();
        let fabric = Fabric::new(sim.clone(), n_servers + n_clients, NetConfig::default());
        let stack = RdmaStack::new(fabric);
        let servers: Vec<_> = (0..n_servers)
            .map(|i| {
                KvServer::new(
                    Rc::clone(&stack),
                    NodeId(i as u32),
                    KvServerConfig::default(),
                )
            })
            .collect();
        Cluster {
            sim,
            stack,
            servers,
        }
    }

    fn client(c: &Cluster, node: u32) -> Rc<KvClient> {
        KvClient::new(
            Rc::clone(&c.stack),
            NodeId(node),
            c.servers.clone(),
            KvClientConfig::default(),
        )
    }

    #[test]
    fn set_get_small_value_inline() {
        let c = cluster(2, 1);
        let cl = client(&c, 2);
        c.sim.block_on(async move {
            cl.set(b"k1", Bytes::from_static(b"small"), 9, 0)
                .await
                .unwrap();
            let v = cl.get(b"k1").await.unwrap().unwrap();
            assert_eq!(&v.data[..], b"small");
            assert_eq!(v.flags, 9);
        });
    }

    #[test]
    fn set_get_large_value_one_sided() {
        let c = cluster(2, 1);
        let cl = client(&c, 2);
        let payload: Vec<u8> = (0..512 << 10).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        c.sim.block_on(async move {
            cl.set(b"big", Bytes::from(payload), 0, 0).await.unwrap();
            let v = cl.get(b"big").await.unwrap().unwrap();
            assert_eq!(v.data.len(), expect.len());
            assert_eq!(&v.data[..], &expect[..]);
        });
    }

    #[test]
    fn get_miss_returns_none() {
        let c = cluster(1, 1);
        let cl = client(&c, 1);
        c.sim.block_on(async move {
            assert!(cl.get(b"missing").await.unwrap().is_none());
        });
        let cl2 = client(&c, 1);
        drop(cl2);
    }

    #[test]
    fn keys_spread_across_servers() {
        let c = cluster(4, 1);
        let cl = client(&c, 4);
        let sim = c.sim.clone();
        sim.block_on({
            let cl = Rc::clone(&cl);
            async move {
                for i in 0..200 {
                    let k = format!("blk_{i}_0");
                    cl.set(k.as_bytes(), Bytes::from(vec![1u8; 64]), 0, 0)
                        .await
                        .unwrap();
                }
            }
        });
        let counts: Vec<u64> = c.servers.iter().map(|s| s.store().stats().items).collect();
        assert_eq!(counts.iter().sum::<u64>(), 200);
        for (i, cnt) in counts.iter().enumerate() {
            assert!(*cnt > 10, "server {i} got only {cnt} of 200 keys");
        }
    }

    #[test]
    fn delete_and_cas_through_the_wire() {
        let c = cluster(2, 1);
        let cl = client(&c, 2);
        c.sim.block_on(async move {
            let cas = cl.set(b"k", Bytes::from_static(b"v1"), 0, 0).await.unwrap();
            let cas2 = cl
                .cas(b"k", Bytes::from_static(b"v2"), 0, 0, cas)
                .await
                .unwrap();
            assert!(cas2 > cas);
            let err = cl
                .cas(b"k", Bytes::from_static(b"v3"), 0, 0, cas)
                .await
                .unwrap_err();
            assert_eq!(err, ClientError::Kv(KvError::CasMismatch));
            assert!(cl.delete(b"k").await.unwrap());
            assert!(!cl.delete(b"k").await.unwrap());
        });
    }

    #[test]
    fn add_conflict_and_touch() {
        let c = cluster(1, 1);
        let cl = client(&c, 1);
        c.sim.block_on(async move {
            cl.add(b"a", Bytes::from_static(b"1"), 0, 0).await.unwrap();
            let err = cl
                .add(b"a", Bytes::from_static(b"2"), 0, 0)
                .await
                .unwrap_err();
            assert_eq!(err, ClientError::Kv(KvError::Exists));
            cl.touch(b"a", 1_000_000).await.unwrap();
            let err = cl.touch(b"zzz", 1).await.unwrap_err();
            assert_eq!(err, ClientError::Kv(KvError::NotFound));
        });
    }

    #[test]
    fn rdma_get_faster_than_ipoib_get() {
        // same protocol, two transports: verbs vs ipoib
        fn run(profile: netsim::TransportProfile) -> f64 {
            let sim = Sim::new();
            let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
            let stack = RdmaStack::with_profile(fabric, profile);
            let server = KvServer::new(Rc::clone(&stack), NodeId(0), KvServerConfig::default());
            let cl = KvClient::new(
                Rc::clone(&stack),
                NodeId(1),
                vec![server],
                KvClientConfig::default(),
            );
            let s = sim.clone();
            sim.block_on(async move {
                cl.set(b"k", Bytes::from(vec![7u8; 4096]), 0, 0)
                    .await
                    .unwrap();
                let t0 = s.now();
                for _ in 0..50 {
                    cl.get(b"k").await.unwrap().unwrap();
                }
                (s.now() - t0).as_secs_f64() / 50.0
            })
        }
        let verbs = run(netsim::TransportProfile::verbs_qdr());
        let ipoib = run(netsim::TransportProfile::ipoib_qdr());
        assert!(
            ipoib / verbs > 3.0,
            "expected big RDMA advantage: verbs {verbs:.2e}s vs ipoib {ipoib:.2e}s"
        );
    }

    #[test]
    fn server_death_surfaces_error_and_reconnect_after_recovery() {
        let c = cluster(1, 1);
        let cl = client(&c, 1);
        let fabric = Rc::clone(c.stack.fabric());
        let sim = c.sim.clone();
        sim.block_on({
            let cl = Rc::clone(&cl);
            async move {
                cl.set(b"k", Bytes::from_static(b"v"), 0, 0).await.unwrap();
                fabric.set_up(NodeId(0), false);
                assert!(cl.get(b"k").await.is_err());
                fabric.set_up(NodeId(0), true);
                // reconnects transparently; data survived (same process)
                let v = cl.get(b"k").await.unwrap().unwrap();
                assert_eq!(&v.data[..], b"v");
            }
        });
    }

    #[test]
    fn stats_flow_back() {
        let c = cluster(2, 1);
        let cl = client(&c, 2);
        let cl2 = Rc::clone(&cl);
        c.sim.block_on(async move {
            cl2.set(b"x", Bytes::from_static(b"1"), 0, 0).await.unwrap();
            cl2.get(b"x").await.unwrap();
            let stats = cl2.stats_all().await.unwrap();
            assert_eq!(stats.len(), 2);
            let total_sets: u64 = stats.iter().map(|s| s.sets).sum();
            assert_eq!(total_sets, 1);
        });
        cl_stats_check(&cl);
    }

    fn cl_stats_check(cl: &KvClient) {
        cl.with_stats(|st| {
            assert_eq!(st.sets, 1);
            assert_eq!(st.gets, 1);
            assert_eq!(st.hits, 1);
            assert!(st.get_lat.count() == 1);
            assert!(st.get_lat.mean() > dur::us(1));
        });
    }

    #[test]
    fn counters_and_concat_over_the_wire() {
        let c = cluster(2, 1);
        let cl = client(&c, 2);
        c.sim.block_on(async move {
            cl.set(b"hits", Bytes::from_static(b"10"), 0, 0)
                .await
                .unwrap();
            assert_eq!(cl.incr(b"hits", 5).await.unwrap(), 15);
            assert_eq!(cl.decr(b"hits", 20).await.unwrap(), 0);
            let err = cl.incr(b"missing", 1).await.unwrap_err();
            assert_eq!(err, ClientError::Kv(KvError::NotFound));
            cl.set(b"log", Bytes::from_static(b"b"), 0, 0)
                .await
                .unwrap();
            cl.append_value(b"log", Bytes::from_static(b"c"))
                .await
                .unwrap();
            cl.prepend_value(b"log", Bytes::from_static(b"a"))
                .await
                .unwrap();
            assert_eq!(&cl.get(b"log").await.unwrap().unwrap().data[..], b"abc");
            cl.set(b"txt", Bytes::from_static(b"not-a-number"), 0, 0)
                .await
                .unwrap();
            let err = cl.incr(b"txt", 1).await.unwrap_err();
            assert_eq!(err, ClientError::Kv(KvError::NonNumeric));
        });
    }

    #[test]
    fn multi_get_spans_servers_and_preserves_order() {
        let c = cluster(4, 1);
        let cl = client(&c, 4);
        let s = c.sim.clone();
        c.sim.block_on(async move {
            for i in 0..40 {
                let k = format!("mk{i}");
                cl.set(k.as_bytes(), Bytes::from(vec![i as u8; 100]), i, 0)
                    .await
                    .unwrap();
            }
            let keys: Vec<String> = (0..50).map(|i| format!("mk{i}")).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            let t0 = s.now();
            let got = cl.multi_get(&refs).await.unwrap();
            let batched = (s.now() - t0).as_secs_f64();
            assert_eq!(got.len(), 50);
            for (i, v) in got.iter().enumerate() {
                if i < 40 {
                    let v = v.as_ref().expect("stored key missing");
                    assert_eq!(v.data[0], i as u8);
                    assert_eq!(v.flags, i as u32);
                } else {
                    assert!(v.is_none(), "key {i} should miss");
                }
            }
            // batching beats 50 sequential gets (4 round trips, not 50)
            let t1 = s.now();
            for k in &refs {
                cl.get(k).await.unwrap();
            }
            let sequential = (s.now() - t1).as_secs_f64();
            assert!(
                batched < sequential / 3.0,
                "multi_get ({batched:.2e}s) should be far cheaper than {sequential:.2e}s"
            );
        });
    }

    fn client_with(c: &Cluster, node: u32, config: KvClientConfig) -> Rc<KvClient> {
        KvClient::new(Rc::clone(&c.stack), NodeId(node), c.servers.clone(), config)
    }

    #[test]
    fn replicas_are_distinct_and_lead_with_primary() {
        let c = cluster(4, 1);
        let cl = client_with(
            &c,
            4,
            KvClientConfig {
                replication: 3,
                ..KvClientConfig::default()
            },
        );
        for i in 0..100 {
            let k = format!("key-{i}");
            let reps = cl.replicas(k.as_bytes()).unwrap();
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], cl.route(k.as_bytes()).unwrap());
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must land on distinct servers");
        }
    }

    #[test]
    fn replicated_set_lands_on_all_replicas() {
        let c = cluster(3, 1);
        let cl = client_with(
            &c,
            3,
            KvClientConfig {
                replication: 2,
                ..KvClientConfig::default()
            },
        );
        let cl2 = Rc::clone(&cl);
        c.sim.block_on(async move {
            for i in 0..30 {
                let k = format!("rk{i}");
                cl2.set(k.as_bytes(), Bytes::from(vec![i as u8; 64]), 0, 0)
                    .await
                    .unwrap();
            }
        });
        let total: u64 = c.servers.iter().map(|s| s.store().stats().items).sum();
        assert_eq!(total, 60, "every key must be stored twice");
    }

    #[test]
    fn reads_survive_single_server_crash_with_r2() {
        let c = cluster(3, 1);
        let cl = client_with(
            &c,
            3,
            KvClientConfig {
                replication: 2,
                ..KvClientConfig::default()
            },
        );
        let fabric = Rc::clone(c.stack.fabric());
        let servers = c.servers.clone();
        let sim = c.sim.clone();
        sim.block_on(async move {
            for i in 0..40 {
                let k = format!("fk{i}");
                cl.set(k.as_bytes(), Bytes::from(vec![i as u8; 128]), 0, 0)
                    .await
                    .unwrap();
            }
            // crash server 0 (primary for most of these keys): port down
            // AND volatile contents lost
            fabric.set_up(NodeId(0), false);
            servers[0].store().clear();
            for i in 0..40 {
                let k = format!("fk{i}");
                let v = cl
                    .get(k.as_bytes())
                    .await
                    .unwrap()
                    .expect("r=2 must serve every read through a single crash");
                assert_eq!(v.data[0], i as u8);
            }
            // bring it back empty (restart): reads must STILL find every
            // value via the surviving replica rather than trust the
            // restarted server's miss
            fabric.set_up(NodeId(0), true);
            for i in 0..40 {
                let k = format!("fk{i}");
                assert!(cl.get(k.as_bytes()).await.unwrap().is_some());
            }
        });
        let snap = c.sim.metrics().snapshot();
        assert!(
            snap.counter("kv.failover.reads") > 0,
            "some reads must have failed over; snapshot: {}",
            snap.to_json()
        );
    }

    #[test]
    fn retry_exhaustion_is_counted_and_deterministic() {
        let run = || {
            let c = cluster(1, 1);
            let cl = client_with(
                &c,
                1,
                KvClientConfig {
                    max_retries: 2,
                    ..KvClientConfig::default()
                },
            );
            let fabric = Rc::clone(c.stack.fabric());
            let sim = c.sim.clone();
            let end = c.sim.block_on(async move {
                fabric.set_up(NodeId(0), false);
                let err = cl.get(b"k").await.unwrap_err();
                assert!(matches!(err, ClientError::Rdma(_)));
                sim.now()
            });
            let snap = c.sim.metrics().snapshot();
            (
                end,
                snap.counter("kv.retry.attempts"),
                snap.counter("kv.retry.exhausted"),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "retry timing/counters must be reproducible");
        assert_eq!(a.1, 2, "two backoff retries configured");
        assert_eq!(a.2, 1);
        assert!(
            a.0 > simkit::Time::ZERO,
            "backoff must consume virtual time"
        );
    }

    #[test]
    fn digest_verification_rejects_mismatch_accepts_good() {
        let sim = Sim::new();
        let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
        let stack = RdmaStack::new(fabric);
        let server = KvServer::new(
            Rc::clone(&stack),
            NodeId(0),
            KvServerConfig {
                verify_set_crc: true,
                ..KvServerConfig::default()
            },
        );
        let cl = KvClient::new(
            Rc::clone(&stack),
            NodeId(1),
            vec![server],
            KvClientConfig::default(),
        );
        sim.block_on(async move {
            let data = Bytes::from(vec![1u8; 100]);
            let good = crate::checksum::crc32c_pair(b"k", &data);
            cl.set(b"k", data.clone(), good, 0).await.unwrap();
            assert_eq!(&cl.get(b"k").await.unwrap().unwrap().data[..], &data[..]);
            // a digest that doesn't match the payload is rejected, and the
            // bounded re-send loop eventually surfaces TransferFailed
            let err = cl.set(b"k2", data, good ^ 1, 0).await.unwrap_err();
            assert_eq!(err, ClientError::TransferFailed);
            assert!(cl.get(b"k2").await.unwrap().is_none());
        });
    }

    #[test]
    fn pin_protocol_round_trips() {
        let c = cluster(2, 1);
        let cl = client(&c, 2);
        c.sim.block_on(async move {
            cl.set(b"pk", Bytes::from_static(b"v"), 0, 0).await.unwrap();
            assert!(cl.pin(b"pk").await.unwrap(), "live key must pin");
            assert!(!cl.pin(b"absent").await.unwrap(), "missing key can't pin");
            cl.unpin(b"pk").await;
            cl.unpin(b"absent").await; // best-effort, no panic
        });
    }

    #[test]
    fn replication_cap_follows_live_membership() {
        // r=2 asked for with only one active server: the live view caps at
        // 1, and the cap grows (not stays frozen) when a server joins
        let c = cluster(2, 1);
        let view = crate::Membership::new(vec![Rc::clone(&c.servers[0])], 160);
        let cl = KvClient::with_view(
            Rc::clone(&c.stack),
            NodeId(2),
            Rc::clone(&view),
            KvClientConfig {
                replication: 2,
                ..KvClientConfig::default()
            },
        );
        assert_eq!(cl.replicas(b"k").unwrap().len(), 1);
        view.add_server(Rc::clone(&c.servers[1]));
        assert_eq!(cl.replicas(b"k").unwrap().len(), 2);
        let cl2 = Rc::clone(&cl);
        c.sim.block_on(async move {
            cl2.set(b"k", Bytes::from_static(b"v"), 0, 0).await.unwrap();
        });
        let total: u64 = c.servers.iter().map(|s| s.store().stats().items).sum();
        assert_eq!(total, 2, "post-join set must land on both servers");
    }

    #[test]
    fn reads_after_join_fall_back_to_old_owners() {
        let c = cluster(3, 1);
        let view = crate::Membership::new(c.servers[..2].to_vec(), 160);
        let cl = KvClient::with_view(
            Rc::clone(&c.stack),
            NodeId(3),
            Rc::clone(&view),
            KvClientConfig::default(),
        );
        let sim = c.sim.clone();
        sim.block_on(async move {
            for i in 0..30 {
                let k = format!("jk{i}");
                cl.set(k.as_bytes(), Bytes::from(vec![i as u8; 64]), 0, 0)
                    .await
                    .unwrap();
            }
            view.add_server(Rc::clone(&c.servers[2]));
            assert_eq!(view.epoch(), 1);
            // un-migrated keys now route to the joiner (empty), but the
            // definitive-miss fallback widens to the old owners
            for i in 0..30 {
                let k = format!("jk{i}");
                let v = cl
                    .get(k.as_bytes())
                    .await
                    .unwrap()
                    .expect("old-ring copies must stay readable after a join");
                assert_eq!(v.data[0], i as u8);
            }
            let snap = c.sim.metrics().snapshot();
            assert!(
                snap.counter("kv.epoch.fallback_reads") > 0,
                "some keys must have remapped to the joiner"
            );
        });
    }

    #[test]
    fn drained_server_gets_no_new_writes_but_old_data_stays_readable() {
        let c = cluster(3, 1);
        let view = crate::Membership::new(c.servers.clone(), 160);
        let cl = KvClient::with_view(
            Rc::clone(&c.stack),
            NodeId(3),
            Rc::clone(&view),
            KvClientConfig::default(),
        );
        let servers = c.servers.clone();
        c.sim.block_on(async move {
            for i in 0..30 {
                let k = format!("dk{i}");
                cl.set(k.as_bytes(), Bytes::from(vec![i as u8; 64]), 0, 0)
                    .await
                    .unwrap();
            }
            let drained = servers[1].node();
            assert!(view.drain_server(drained));
            let before = servers[1].store().stats().items;
            for i in 30..60 {
                let k = format!("dk{i}");
                assert_ne!(cl.route(k.as_bytes()).unwrap(), 1, "drained owns nothing");
                cl.set(k.as_bytes(), Bytes::from(vec![i as u8; 64]), 0, 0)
                    .await
                    .unwrap();
            }
            assert_eq!(
                servers[1].store().stats().items,
                before,
                "no new writes may land on a drained server"
            );
            for i in 0..60 {
                let k = format!("dk{i}");
                assert!(cl.get(k.as_bytes()).await.unwrap().is_some());
            }
        });
    }

    #[test]
    fn concurrent_ops_from_many_clients() {
        let c = cluster(4, 8);
        let sim = c.sim.clone();
        let mut handles = Vec::new();
        for cn in 0..8u32 {
            let cl = client(&c, 4 + cn);
            handles.push(sim.spawn(async move {
                for i in 0..25 {
                    let k = format!("c{cn}-k{i}");
                    cl.set(k.as_bytes(), Bytes::from(vec![cn as u8; 1000]), 0, 0)
                        .await
                        .unwrap();
                }
                for i in 0..25 {
                    let k = format!("c{cn}-k{i}");
                    let v = cl.get(k.as_bytes()).await.unwrap().unwrap();
                    assert_eq!(v.data.len(), 1000);
                    assert_eq!(v.data[0], cn as u8);
                }
            }));
        }
        sim.run();
        for h in handles {
            assert!(h.is_finished());
        }
        let total: u64 = c.servers.iter().map(|s| s.store().stats().items).sum();
        assert_eq!(total, 200);
    }
}
