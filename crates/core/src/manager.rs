//! The burst-buffer manager: namespace owner and persistence manager.
//!
//! One manager process tracks every file written through the buffer and —
//! for the asynchronous schemes — runs per-file flusher tasks that drain
//! buffered chunks to Lustre with bounded parallelism and a watermark that
//! back-pressures writers before unflushed data could face LRU pressure.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use netsim::{NodeId, ReplyHandle, RpcError, Switchboard};
use rdmasim::RdmaStack;
use rkv::client::ClientError;
use rkv::{KvClient, KvServer};
use simkit::dur;
use simkit::sync::mpsc;
use simkit::sync::semaphore::Semaphore;

use lustre::{LustreCluster, LustreError};

use crate::{BbConfig, Scheme};

/// KV key for chunk `seq` of file `file_id`.
pub fn chunk_key(file_id: u64, seq: u64) -> Vec<u8> {
    format!("f{file_id}:{seq}").into_bytes()
}

/// Lustre backing path for a buffered file.
pub fn lustre_path(path: &str) -> String {
    format!("/bb{path}")
}

/// Burst-buffer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists.
    Exists(String),
    /// File is still being written (delete/read race).
    Busy(String),
    /// KV layer failure.
    Kv(ClientError),
    /// Lustre layer failure.
    Lustre(LustreError),
    /// HDFS overlay failure (scheme C).
    Hdfs(hdfs::HdfsError),
    /// RPC failure talking to the manager.
    Rpc(RpcError),
    /// A chunk is in neither the buffer nor Lustre (buffer node lost
    /// before flush — the AsyncLustre fault window).
    DataUnavailable {
        /// File path.
        path: String,
        /// Missing chunk.
        seq: u64,
    },
}

impl fmt::Display for BbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BbError::NotFound(p) => write!(f, "no such file: {p}"),
            BbError::Exists(p) => write!(f, "file exists: {p}"),
            BbError::Busy(p) => write!(f, "file busy: {p}"),
            BbError::Kv(e) => write!(f, "buffer layer: {e}"),
            BbError::Lustre(e) => write!(f, "backing store: {e}"),
            BbError::Hdfs(e) => write!(f, "local overlay: {e}"),
            BbError::Rpc(e) => write!(f, "manager rpc: {e}"),
            BbError::DataUnavailable { path, seq } => {
                write!(f, "chunk {seq} of {path} lost (unflushed buffer data)")
            }
        }
    }
}
impl std::error::Error for BbError {}

impl From<ClientError> for BbError {
    fn from(e: ClientError) -> Self {
        BbError::Kv(e)
    }
}
impl From<LustreError> for BbError {
    fn from(e: LustreError) -> Self {
        BbError::Lustre(e)
    }
}
impl From<hdfs::HdfsError> for BbError {
    fn from(e: hdfs::HdfsError) -> Self {
        BbError::Hdfs(e)
    }
}
impl From<RpcError> for BbError {
    fn from(e: RpcError) -> Self {
        BbError::Rpc(e)
    }
}

/// Durability state of a buffered file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileState {
    /// Open for writing.
    Writing,
    /// Closed; flush to Lustre in progress.
    Closed,
    /// Every byte is safe in Lustre.
    Flushed,
    /// At least one unflushed chunk was lost from the buffer.
    Lost,
}

/// File metadata returned by `Open`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbFileMeta {
    /// Stable file id (used in chunk keys).
    pub file_id: u64,
    /// File size (valid once closed).
    pub size: u64,
    /// Durability state.
    pub state: FileState,
    /// Chunk size the file was written with.
    pub chunk_size: u64,
    /// Lustre backing path.
    pub lustre_path: String,
}

/// Manager RPCs.
pub enum MgrMsg {
    /// Register a new file; returns its id.
    Create {
        /// File path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<u64, BbError>>,
    },
    /// A chunk landed in the buffer. The ack doubles as a flow-control
    /// credit: it is withheld while unflushed bytes exceed the watermark.
    ChunkReady {
        /// File id.
        file_id: u64,
        /// Chunk sequence number.
        seq: u64,
        /// Chunk length.
        len: u64,
        /// Reply channel (credit).
        reply: ReplyHandle<Result<(), BbError>>,
    },
    /// Degraded path: the buffer rejected the chunk, so the raw data comes
    /// to the manager, which persists it to Lustre directly.
    ChunkDirect {
        /// File id.
        file_id: u64,
        /// Chunk sequence number.
        seq: u64,
        /// Chunk payload.
        data: Bytes,
        /// Reply channel.
        reply: ReplyHandle<Result<(), BbError>>,
    },
    /// Seal a file. For async schemes the ack does not wait for the flush.
    Close {
        /// File id.
        file_id: u64,
        /// Final size.
        size: u64,
        /// Reply channel.
        reply: ReplyHandle<Result<(), BbError>>,
    },
    /// Block until the file is fully flushed (or lost).
    WaitFlushed {
        /// File path.
        path: String,
        /// Resolves with the final state.
        reply: ReplyHandle<Result<FileState, BbError>>,
    },
    /// Fetch metadata.
    Open {
        /// File path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<BbFileMeta, BbError>>,
    },
    /// Drop a file from the namespace; the caller reaps chunk/Lustre data.
    Delete {
        /// File path.
        path: String,
        /// Reply carries the dropped file's metadata.
        reply: ReplyHandle<Result<BbFileMeta, BbError>>,
    },
    /// List paths under a prefix.
    List {
        /// Path prefix.
        prefix: String,
        /// Reply channel.
        reply: ReplyHandle<Vec<String>>,
    },
}

enum FlushItem {
    Chunk { seq: u64, len: u64 },
    Direct { seq: u64, data: Bytes },
    Close { size: u64 },
}

struct FileEntry {
    path: String,
    file_id: u64,
    size: u64,
    state: FileState,
    flush_tx: Option<mpsc::Sender<FlushItem>>,
}

/// Mailbox service name for the manager.
pub const MGR_SERVICE: &str = "bb-mgr";

/// Cumulative manager/flusher counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MgrStats {
    /// Chunks flushed buffer→Lustre.
    pub chunks_flushed: u64,
    /// Bytes flushed buffer→Lustre.
    pub bytes_flushed: u64,
    /// Chunks persisted via the degraded direct path.
    pub chunks_direct: u64,
    /// Chunks that were lost (missing from the buffer at flush time).
    pub chunks_lost: u64,
    /// Times a writer was stalled by the flush watermark.
    pub watermark_stalls: u64,
}

/// The manager/flusher counters as registered metrics (`bb.mgr.*`);
/// [`MgrStats`] is the frozen view assembled by [`MgrCounters::snapshot`].
pub(crate) struct MgrCounters {
    chunks_flushed: simkit::telemetry::Counter,
    bytes_flushed: simkit::telemetry::Counter,
    chunks_direct: simkit::telemetry::Counter,
    chunks_lost: simkit::telemetry::Counter,
    watermark_stalls: simkit::telemetry::Counter,
}

impl MgrCounters {
    fn register(m: &simkit::telemetry::Registry) -> MgrCounters {
        MgrCounters {
            chunks_flushed: m.counter("bb.mgr.chunks_flushed"),
            bytes_flushed: m.counter("bb.mgr.bytes_flushed"),
            chunks_direct: m.counter("bb.mgr.chunks_direct"),
            chunks_lost: m.counter("bb.mgr.chunks_lost"),
            watermark_stalls: m.counter("bb.mgr.watermark_stalls"),
        }
    }

    fn snapshot(&self) -> MgrStats {
        MgrStats {
            chunks_flushed: self.chunks_flushed.get(),
            bytes_flushed: self.bytes_flushed.get(),
            chunks_direct: self.chunks_direct.get(),
            chunks_lost: self.chunks_lost.get(),
            watermark_stalls: self.watermark_stalls.get(),
        }
    }
}

type FlushWaiters = RefCell<HashMap<u64, Vec<ReplyHandle<Result<FileState, BbError>>>>>;

/// The manager process.
pub struct BbManager {
    node: NodeId,
    config: BbConfig,
    net: Rc<Switchboard<MgrMsg>>,
    kv: Rc<KvClient>,
    lustre_client: lustre::LustreClient,
    files: RefCell<HashMap<String, Rc<RefCell<FileEntry>>>>,
    by_id: RefCell<HashMap<u64, Rc<RefCell<FileEntry>>>>,
    next_id: Cell<u64>,
    unflushed: Cell<u64>,
    watermark: u64,
    credit_waiters: RefCell<VecDeque<ReplyHandle<Result<(), BbError>>>>,
    flush_waiters: FlushWaiters,
    flush_gate: Semaphore,
    stats: MgrCounters,
}

impl BbManager {
    /// Spawn the manager on `node`.
    pub fn spawn(
        stack: Rc<RdmaStack>,
        node: NodeId,
        kv_servers: Vec<Rc<KvServer>>,
        lustre: Rc<LustreCluster>,
        config: BbConfig,
    ) -> Rc<BbManager> {
        let fabric = Rc::clone(stack.fabric());
        // manager control traffic rides the verbs fabric too
        let net = Switchboard::new(Rc::clone(&fabric), *stack.profile());
        let kv = KvClient::new(
            Rc::clone(&stack),
            node,
            kv_servers,
            crate::client::kv_client_config(&config),
        );
        // budget against the *physical* slab footprint of a chunk item
        // (key + length header + payload), not its logical size — a chunk
        // just over a class boundary can occupy a whole page
        let slab = rkv::slab::SlabConfig::default();
        let item = config.chunk_size as usize + 32;
        let footprint = slab
            .item_footprint(item)
            .expect("chunk_size exceeds the KV item limit") as f64;
        let density = (config.chunk_size as f64 / footprint).min(1.0);
        let watermark = ((config.kv_mem_per_server * config.kv_servers as u64) as f64
            * config.flush_watermark
            * density) as u64;
        let mgr = Rc::new(BbManager {
            node,
            config,
            net: Rc::clone(&net),
            kv,
            lustre_client: lustre.client(node),
            files: RefCell::new(HashMap::new()),
            by_id: RefCell::new(HashMap::new()),
            next_id: Cell::new(1),
            unflushed: Cell::new(0),
            watermark,
            credit_waiters: RefCell::new(VecDeque::new()),
            flush_waiters: RefCell::new(HashMap::new()),
            flush_gate: Semaphore::new(config.flusher_threads.max(1)),
            stats: MgrCounters::register(fabric.sim().metrics()),
        });
        let mut rx = net.register(node, MGR_SERVICE);
        let sim = net.fabric().sim().clone();
        let this = Rc::clone(&mgr);
        sim.clone().spawn(async move {
            while let Ok(env) = rx.recv().await {
                sim.sleep(dur::us(2)).await;
                this.handle(env.msg);
            }
        });
        mgr
    }

    /// Fabric node of the manager.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The manager's control switchboard (clients call through this).
    pub fn net(&self) -> &Rc<Switchboard<MgrMsg>> {
        &self.net
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MgrStats {
        self.stats.snapshot()
    }

    /// Unflushed buffered bytes (flow-control pressure).
    pub fn unflushed_bytes(&self) -> u64 {
        self.unflushed.get()
    }

    fn handle(self: &Rc<Self>, msg: MgrMsg) {
        match msg {
            MgrMsg::Create { path, reply } => {
                let r = self.create(&path);
                reply.send(r, 64);
            }
            MgrMsg::ChunkReady {
                file_id,
                seq,
                len,
                reply,
            } => {
                let entry = self.by_id.borrow().get(&file_id).cloned();
                let Some(entry) = entry else {
                    reply.send(Err(BbError::NotFound(format!("file_id {file_id}"))), 16);
                    return;
                };
                self.unflushed.set(self.unflushed.get() + len);
                if let Some(tx) = &entry.borrow().flush_tx {
                    let _ = tx.try_send(FlushItem::Chunk { seq, len });
                }
                if self.unflushed.get() <= self.watermark {
                    reply.send(Ok(()), 16);
                } else {
                    self.stats.watermark_stalls.inc();
                    self.credit_waiters.borrow_mut().push_back(reply);
                }
            }
            MgrMsg::ChunkDirect {
                file_id,
                seq,
                data,
                reply,
            } => {
                let entry = self.by_id.borrow().get(&file_id).cloned();
                let Some(entry) = entry else {
                    reply.send(Err(BbError::NotFound(format!("file_id {file_id}"))), 16);
                    return;
                };
                let tx = entry.borrow().flush_tx.clone();
                match tx {
                    Some(tx) => {
                        let _ = tx.try_send(FlushItem::Direct { seq, data });
                        reply.send(Ok(()), 16);
                    }
                    None => {
                        reply.send(Err(BbError::Busy("no flusher for this scheme".into())), 16);
                    }
                }
            }
            MgrMsg::Close {
                file_id,
                size,
                reply,
            } => {
                let entry = self.by_id.borrow().get(&file_id).cloned();
                let Some(entry) = entry else {
                    reply.send(Err(BbError::NotFound(format!("file_id {file_id}"))), 16);
                    return;
                };
                {
                    let mut e = entry.borrow_mut();
                    e.size = size;
                    match e.flush_tx.take() {
                        Some(tx) => {
                            e.state = FileState::Closed;
                            let _ = tx.try_send(FlushItem::Close { size });
                            // dropping tx closes the flusher's queue
                        }
                        None => {
                            // sync scheme: the client already persisted
                            e.state = FileState::Flushed;
                        }
                    }
                }
                let e = entry.borrow();
                if e.state == FileState::Flushed {
                    self.notify_flushed(e.file_id, FileState::Flushed);
                }
                reply.send(Ok(()), 16);
            }
            MgrMsg::WaitFlushed { path, reply } => {
                let entry = self.files.borrow().get(&path).cloned();
                match entry {
                    None => reply.send(Err(BbError::NotFound(path)), 16),
                    Some(e) => {
                        let st = e.borrow().state;
                        match st {
                            FileState::Flushed | FileState::Lost => {
                                reply.send(Ok(st), 16);
                            }
                            _ => {
                                let id = e.borrow().file_id;
                                self.flush_waiters
                                    .borrow_mut()
                                    .entry(id)
                                    .or_default()
                                    .push(reply);
                            }
                        }
                    }
                }
            }
            MgrMsg::Open { path, reply } => {
                let r = match self.files.borrow().get(&path) {
                    None => Err(BbError::NotFound(path)),
                    Some(e) => {
                        let e = e.borrow();
                        Ok(BbFileMeta {
                            file_id: e.file_id,
                            size: e.size,
                            state: e.state,
                            chunk_size: self.config.chunk_size,
                            lustre_path: lustre_path(&e.path),
                        })
                    }
                };
                reply.send(r, 128);
            }
            MgrMsg::Delete { path, reply } => {
                let busy = self
                    .files
                    .borrow()
                    .get(&path)
                    .map(|e| e.borrow().state == FileState::Writing)
                    .unwrap_or(false);
                if busy {
                    reply.send(Err(BbError::Busy(path)), 16);
                    return;
                }
                let removed = self.files.borrow_mut().remove(&path);
                let r = match removed {
                    None => Err(BbError::NotFound(path)),
                    Some(e) => {
                        let e = e.borrow();
                        self.by_id.borrow_mut().remove(&e.file_id);
                        Ok(BbFileMeta {
                            file_id: e.file_id,
                            size: e.size,
                            state: e.state,
                            chunk_size: self.config.chunk_size,
                            lustre_path: lustre_path(&e.path),
                        })
                    }
                };
                reply.send(r, 128);
            }
            MgrMsg::List { prefix, reply } => {
                let mut v: Vec<String> = self
                    .files
                    .borrow()
                    .keys()
                    .filter(|p| p.starts_with(&prefix))
                    .cloned()
                    .collect();
                v.sort();
                let bytes = v.iter().map(|p| p.len() as u64 + 8).sum::<u64>().max(64);
                reply.send(v, bytes);
            }
        }
    }

    fn create(self: &Rc<Self>, path: &str) -> Result<u64, BbError> {
        if self.files.borrow().contains_key(path) {
            return Err(BbError::Exists(path.to_owned()));
        }
        let file_id = self.next_id.get();
        self.next_id.set(file_id + 1);
        let needs_flusher = matches!(
            self.config.scheme,
            Scheme::AsyncLustre | Scheme::HybridLocality
        );
        let flush_tx = if needs_flusher {
            let (tx, rx) = mpsc::unbounded();
            let this = Rc::clone(self);
            let lpath = lustre_path(path);
            let fpath = path.to_owned();
            self.net
                .fabric()
                .sim()
                .clone()
                .spawn(async move { this.run_flusher(file_id, fpath, lpath, rx).await });
            Some(tx)
        } else {
            None
        };
        let entry = Rc::new(RefCell::new(FileEntry {
            path: path.to_owned(),
            file_id,
            size: 0,
            state: FileState::Writing,
            flush_tx,
        }));
        self.files
            .borrow_mut()
            .insert(path.to_owned(), Rc::clone(&entry));
        self.by_id.borrow_mut().insert(file_id, entry);
        Ok(file_id)
    }

    fn release_credit(&self, len: u64) {
        self.unflushed.set(self.unflushed.get().saturating_sub(len));
        let mut waiters = self.credit_waiters.borrow_mut();
        while self.unflushed.get() <= self.watermark {
            match waiters.pop_front() {
                Some(reply) => reply.send(Ok(()), 16),
                None => break,
            }
        }
    }

    fn notify_flushed(&self, file_id: u64, state: FileState) {
        if let Some(waiters) = self.flush_waiters.borrow_mut().remove(&file_id) {
            for w in waiters {
                w.send(Ok(state), 16);
            }
        }
    }

    /// Per-file persistence task: drain chunk notifications, pull payloads
    /// from the buffer, and lay them out in the Lustre backing file.
    async fn run_flusher(
        self: Rc<Self>,
        file_id: u64,
        path: String,
        lpath: String,
        mut rx: mpsc::Receiver<FlushItem>,
    ) {
        let sim = self.net.fabric().sim().clone();
        let lfile = match self.lustre_client.create(&lpath).await {
            Ok(f) => Rc::new(f),
            Err(_) => {
                // backing store unavailable: everything becomes Lost
                self.mark_lost(file_id);
                return;
            }
        };
        let chunk_size = self.config.chunk_size;
        let mut lost = false;
        let mut inflight: Vec<simkit::JoinHandle<bool>> = Vec::new();
        let mut final_size = None;
        while let Ok(item) = rx.recv().await {
            match item {
                FlushItem::Chunk { seq, len } => {
                    let this = Rc::clone(&self);
                    let lfile = Rc::clone(&lfile);
                    inflight.push(sim.spawn(async move {
                        let _gate = this.flush_gate.acquire().await;
                        let _sp =
                            this.net
                                .fabric()
                                .sim()
                                .span("bb.flush_chunk", "bb", this.node.0, seq);
                        let key = chunk_key(file_id, seq);
                        // A transport error is not proof of loss: the
                        // replica set may be mid-crash/restart. Retry with
                        // bounded backoff and only count the chunk lost on
                        // a definitive miss (`Ok(None)`: every replica
                        // answered, none had it) or retry exhaustion.
                        let sim = this.net.fabric().sim().clone();
                        let mut got = this.kv.get(&key).await;
                        let mut attempt = 0u32;
                        while got.is_err() && attempt < this.config.kv_retries + 3 {
                            let delay = this
                                .config
                                .kv_backoff
                                .saturating_mul(8 << attempt.min(20))
                                .min(std::time::Duration::from_millis(10));
                            attempt += 1;
                            sim.sleep(delay).await;
                            got = this.kv.get(&key).await;
                        }
                        let ok = match got {
                            Ok(Some(v)) => {
                                let r = lfile.write_at(seq * chunk_size, v.data).await.is_ok();
                                if r {
                                    this.stats.chunks_flushed.inc();
                                    this.stats.bytes_flushed.add(len);
                                }
                                r
                            }
                            _ => {
                                this.stats.chunks_lost.inc();
                                false
                            }
                        };
                        this.release_credit(len);
                        ok
                    }));
                }
                FlushItem::Direct { seq, data } => {
                    let this = Rc::clone(&self);
                    let lfile = Rc::clone(&lfile);
                    inflight.push(sim.spawn(async move {
                        let _gate = this.flush_gate.acquire().await;
                        let ok = lfile.write_at(seq * chunk_size, data).await.is_ok();
                        if ok {
                            this.stats.chunks_direct.inc();
                        }
                        ok
                    }));
                }
                FlushItem::Close { size } => {
                    final_size = Some(size);
                    break;
                }
            }
        }
        for h in inflight {
            if !h.await {
                lost = true;
            }
        }
        if let Some(size) = final_size {
            // pad the logical size: write_pos may be short of `size` only
            // when the final chunk was lost, which is covered by `lost`
            let _ = size;
        }
        let close_ok = lfile.close().await.is_ok();
        let state = if lost || !close_ok {
            FileState::Lost
        } else {
            FileState::Flushed
        };
        if let Some(entry) = self.by_id.borrow().get(&file_id) {
            entry.borrow_mut().state = state;
        }
        self.notify_flushed(file_id, state);
        let _ = path;
    }

    fn mark_lost(&self, file_id: u64) {
        if let Some(entry) = self.by_id.borrow().get(&file_id) {
            entry.borrow_mut().state = FileState::Lost;
        }
        self.notify_flushed(file_id, FileState::Lost);
    }
}
