//! The burst-buffer manager: namespace owner and persistence manager.
//!
//! One manager process tracks every file written through the buffer and —
//! for the asynchronous schemes — runs per-file flusher tasks that drain
//! buffered chunks to Lustre with bounded parallelism and a watermark that
//! back-pressures writers before unflushed data could face LRU pressure.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use netsim::{NodeId, ReplyHandle, RpcError, Switchboard};
use rdmasim::RdmaStack;
use rkv::client::ClientError;
use rkv::{HashRing, KvClient, Membership};
use simkit::dur;
use simkit::sync::mpsc;
use simkit::sync::semaphore::Semaphore;

use lustre::{LustreCluster, LustreError};

use crate::integrity::{self, IntegrityCounters};
use crate::placement::{self, AccessTracker, PlaceState};
use crate::{BbConfig, Scheme};

/// KV key for chunk `seq` of file `file_id`.
pub fn chunk_key(file_id: u64, seq: u64) -> Vec<u8> {
    format!("f{file_id}:{seq}").into_bytes()
}

/// Lustre backing path for a buffered file.
pub fn lustre_path(path: &str) -> String {
    format!("/bb{path}")
}

/// Burst-buffer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists.
    Exists(String),
    /// File is still being written (delete/read race).
    Busy(String),
    /// KV layer failure.
    Kv(ClientError),
    /// Lustre layer failure.
    Lustre(LustreError),
    /// HDFS overlay failure (scheme C).
    Hdfs(hdfs::HdfsError),
    /// RPC failure talking to the manager.
    Rpc(RpcError),
    /// A chunk is in neither the buffer nor Lustre (buffer node lost
    /// before flush — the AsyncLustre fault window).
    DataUnavailable {
        /// File path.
        path: String,
        /// Missing chunk.
        seq: u64,
    },
}

impl fmt::Display for BbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BbError::NotFound(p) => write!(f, "no such file: {p}"),
            BbError::Exists(p) => write!(f, "file exists: {p}"),
            BbError::Busy(p) => write!(f, "file busy: {p}"),
            BbError::Kv(e) => write!(f, "buffer layer: {e}"),
            BbError::Lustre(e) => write!(f, "backing store: {e}"),
            BbError::Hdfs(e) => write!(f, "local overlay: {e}"),
            BbError::Rpc(e) => write!(f, "manager rpc: {e}"),
            BbError::DataUnavailable { path, seq } => {
                write!(f, "chunk {seq} of {path} lost (unflushed buffer data)")
            }
        }
    }
}
impl std::error::Error for BbError {}

impl From<ClientError> for BbError {
    fn from(e: ClientError) -> Self {
        BbError::Kv(e)
    }
}
impl From<LustreError> for BbError {
    fn from(e: LustreError) -> Self {
        BbError::Lustre(e)
    }
}
impl From<hdfs::HdfsError> for BbError {
    fn from(e: hdfs::HdfsError) -> Self {
        BbError::Hdfs(e)
    }
}
impl From<RpcError> for BbError {
    fn from(e: RpcError) -> Self {
        BbError::Rpc(e)
    }
}

/// Durability state of a buffered file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileState {
    /// Open for writing.
    Writing,
    /// Closed; flush to Lustre in progress.
    Closed,
    /// Every byte is safe in Lustre.
    Flushed,
    /// At least one unflushed chunk was lost from the buffer.
    Lost,
}

/// File metadata returned by `Open`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbFileMeta {
    /// Stable file id (used in chunk keys).
    pub file_id: u64,
    /// File size (valid once closed).
    pub size: u64,
    /// Durability state.
    pub state: FileState,
    /// Chunk size the file was written with.
    pub chunk_size: u64,
    /// Lustre backing path.
    pub lustre_path: String,
    /// Per-chunk CRC32C manifest (`crc32c(chunk_key || data)`, indexed by
    /// seq). Populated at close; readers verify Lustre-tier reads against
    /// it. Empty while the file is still being written.
    pub chunk_crcs: Vec<u32>,
}

/// Write acknowledgement carried by `ChunkReady`/`ChunkDirect` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// The buffer is above its overload high watermark: the writer should
    /// degrade to write-through (`ChunkDirect`) until an ack clears the
    /// flag again (below the low watermark — hysteresis).
    pub pressure: bool,
    /// The traffic classifier labelled this file a long-sequential
    /// stream: the writer should route its remaining chunks write-through
    /// to Lustre, keeping BB capacity for bursts. Always `false` when
    /// admission control is off ([`BbConfig::bb_admit_stream_bytes`] = 0).
    pub write_through: bool,
}

/// Manager RPCs.
pub enum MgrMsg {
    /// Register a new file; returns its id.
    Create {
        /// File path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<u64, BbError>>,
    },
    /// A chunk landed in the buffer. The ack doubles as a flow-control
    /// credit: it is withheld while unflushed bytes exceed the watermark.
    ChunkReady {
        /// File id.
        file_id: u64,
        /// Chunk sequence number.
        seq: u64,
        /// Chunk length.
        len: u64,
        /// CRC32C of `chunk_key || data` as sealed by the writer.
        crc: u32,
        /// Reply channel (credit).
        reply: ReplyHandle<Result<WriteAck, BbError>>,
    },
    /// Degraded path: the buffer rejected the chunk (or the writer is
    /// under pressure), so the raw data comes to the manager, which
    /// persists it to Lustre directly.
    ChunkDirect {
        /// File id.
        file_id: u64,
        /// Chunk sequence number.
        seq: u64,
        /// Chunk payload.
        data: Bytes,
        /// CRC32C of `chunk_key || data` as sealed by the writer.
        crc: u32,
        /// Reply channel.
        reply: ReplyHandle<Result<WriteAck, BbError>>,
    },
    /// Seal a file. For async schemes the ack does not wait for the flush.
    Close {
        /// File id.
        file_id: u64,
        /// Final size.
        size: u64,
        /// Per-chunk CRC manifest, indexed by seq.
        crcs: Vec<u32>,
        /// Reply channel.
        reply: ReplyHandle<Result<(), BbError>>,
    },
    /// Block until the file is fully flushed (or lost).
    WaitFlushed {
        /// File path.
        path: String,
        /// Resolves with the final state.
        reply: ReplyHandle<Result<FileState, BbError>>,
    },
    /// Fetch metadata.
    Open {
        /// File path.
        path: String,
        /// Reply channel.
        reply: ReplyHandle<Result<BbFileMeta, BbError>>,
    },
    /// Drop a file from the namespace; the caller reaps chunk/Lustre data.
    Delete {
        /// File path.
        path: String,
        /// Reply carries the dropped file's metadata.
        reply: ReplyHandle<Result<BbFileMeta, BbError>>,
    },
    /// List paths under a prefix.
    List {
        /// Path prefix.
        prefix: String,
        /// Reply channel.
        reply: ReplyHandle<Vec<String>>,
    },
}

enum FlushItem {
    Chunk {
        seq: u64,
        len: u64,
        crc: u32,
    },
    Direct {
        seq: u64,
        data: Bytes,
        /// Classified long-sequential: contiguous runs may coalesce into
        /// stripe-sized extents. Pressure-degraded chunks stay `false`
        /// and flush one extent per chunk (the seed path, bit-for-bit).
        streaming: bool,
    },
    Close {
        size: u64,
    },
}

/// Concatenate coalesced chunk payloads into one extent (zero-copy for a
/// run of one).
fn concat_extent(parts: &mut Vec<Bytes>) -> Bytes {
    if parts.len() == 1 {
        return parts.pop().expect("len checked");
    }
    let total = parts.iter().map(|b| b.len()).sum();
    let mut buf = bytes::BytesMut::with_capacity(total);
    for p in parts.drain(..) {
        buf.extend_from_slice(&p);
    }
    buf.freeze()
}

struct FileEntry {
    path: String,
    file_id: u64,
    size: u64,
    state: FileState,
    flush_tx: Option<mpsc::Sender<FlushItem>>,
    crcs: Vec<u32>,
    /// Bytes written inside the current classifier window (admission
    /// control; untouched when the classifier is off).
    admit_bytes: u64,
    /// Virtual-time nanos of the file's last write (window-gap detection).
    admit_last: u64,
    /// Classified long-sequential: acks steer the writer to Lustre
    /// write-through. Sticky for the file's lifetime.
    streaming: bool,
}

/// Mailbox service name for the manager.
pub const MGR_SERVICE: &str = "bb-mgr";

/// Cumulative manager/flusher counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MgrStats {
    /// Chunks flushed buffer→Lustre.
    pub chunks_flushed: u64,
    /// Bytes flushed buffer→Lustre.
    pub bytes_flushed: u64,
    /// Chunks persisted via the degraded direct path.
    pub chunks_direct: u64,
    /// Chunks that were lost (missing from the buffer at flush time).
    pub chunks_lost: u64,
    /// Times a writer was stalled by the flush watermark.
    pub watermark_stalls: u64,
}

/// The manager/flusher counters as registered metrics (`bb.mgr.*`);
/// [`MgrStats`] is the frozen view assembled by [`MgrCounters::snapshot`].
pub(crate) struct MgrCounters {
    chunks_flushed: simkit::telemetry::Counter,
    bytes_flushed: simkit::telemetry::Counter,
    chunks_direct: simkit::telemetry::Counter,
    chunks_lost: simkit::telemetry::Counter,
    watermark_stalls: simkit::telemetry::Counter,
}

impl MgrCounters {
    fn register(m: &simkit::telemetry::Registry) -> MgrCounters {
        MgrCounters {
            chunks_flushed: m.counter("bb.mgr.chunks_flushed"),
            bytes_flushed: m.counter("bb.mgr.bytes_flushed"),
            chunks_direct: m.counter("bb.mgr.chunks_direct"),
            chunks_lost: m.counter("bb.mgr.chunks_lost"),
            watermark_stalls: m.counter("bb.mgr.watermark_stalls"),
        }
    }

    fn snapshot(&self) -> MgrStats {
        MgrStats {
            chunks_flushed: self.chunks_flushed.get(),
            bytes_flushed: self.bytes_flushed.get(),
            chunks_direct: self.chunks_direct.get(),
            chunks_lost: self.chunks_lost.get(),
            watermark_stalls: self.watermark_stalls.get(),
        }
    }
}

/// Background-scrubber counters (`bb.scrub.*`).
struct ScrubCounters {
    scanned: simkit::telemetry::Counter,
    repaired: simkit::telemetry::Counter,
    unrepairable: simkit::telemetry::Counter,
}

impl ScrubCounters {
    fn register(m: &simkit::telemetry::Registry) -> ScrubCounters {
        ScrubCounters {
            scanned: m.counter("bb.scrub.scanned"),
            repaired: m.counter("bb.scrub.repaired"),
            unrepairable: m.counter("bb.scrub.unrepairable"),
        }
    }
}

/// Background-rebalancer counters (`bb.rebalance.*`).
struct RebalanceCounters {
    /// Chunks migrated to their new ring owners (copy verified, old
    /// copies deleted).
    moved: simkit::telemetry::Counter,
    /// Payload bytes copied by migrations.
    bytes: simkit::telemetry::Counter,
    /// Migrated copies that failed the CRC read-back (old copies kept).
    verify_fail: simkit::telemetry::Counter,
    /// Membership epochs the rebalancer has processed.
    epochs: simkit::telemetry::Counter,
}

impl RebalanceCounters {
    fn register(m: &simkit::telemetry::Registry) -> RebalanceCounters {
        RebalanceCounters {
            moved: m.counter("bb.rebalance.moved"),
            bytes: m.counter("bb.rebalance.bytes"),
            verify_fail: m.counter("bb.rebalance.verify_fail"),
            epochs: m.counter("bb.rebalance.epochs"),
        }
    }
}

/// Traffic-aware admission counters (`bb.admit.*`) — registered only
/// when the classifier is on ([`BbConfig::bb_admit_stream_bytes`] > 0),
/// so the names stay out of default snapshots.
struct AdmitCounters {
    /// Files labelled long-sequential by the windowed classifier.
    stream_detected: simkit::telemetry::Counter,
    /// Chunks a classified stream sent write-through (admission routing,
    /// distinct from pressure-induced write-through).
    writethrough_chunks: simkit::telemetry::Counter,
    /// Times an idle gap longer than the window reset a file's byte count
    /// (a spaced burst staying a burst).
    window_resets: simkit::telemetry::Counter,
}

impl AdmitCounters {
    fn register(m: &simkit::telemetry::Registry) -> AdmitCounters {
        AdmitCounters {
            stream_detected: m.counter("bb.admit.stream_detected"),
            writethrough_chunks: m.counter("bb.admit.writethrough_chunks"),
            window_resets: m.counter("bb.admit.window_resets"),
        }
    }
}

/// Overload (write-pressure) counters (`bb.pressure.*`).
struct PressureCounters {
    enter: simkit::telemetry::Counter,
    exit: simkit::telemetry::Counter,
    writethrough: simkit::telemetry::Counter,
}

impl PressureCounters {
    fn register(m: &simkit::telemetry::Registry) -> PressureCounters {
        PressureCounters {
            enter: m.counter("bb.pressure.enter"),
            exit: m.counter("bb.pressure.exit"),
            writethrough: m.counter("bb.pressure.writethrough"),
        }
    }
}

type FlushWaiters = RefCell<HashMap<u64, Vec<ReplyHandle<Result<FileState, BbError>>>>>;

/// How one verified chunk move ([`BbManager::migrate_to`]) ended.
enum MigrateOutcome {
    /// The chunk vanished (deleted/forgotten) since being queued.
    Gone,
    /// No authoritative copy reachable right now; old layout untouched.
    NoSource,
    /// Another migration already holds the chunk's `migrating` guard
    /// (rebalancer vs placement optimizer); nothing was touched.
    Busy,
    /// A copy or its CRC read-back failed; old copies kept.
    Failed,
    /// The desired set holds verified copies and stale copies are gone.
    /// `wrote` is false when every target already had the data.
    Done {
        /// Whether any fresh copy was written.
        wrote: bool,
        /// Chunk payload size.
        bytes: u64,
    },
}

/// The manager process.
pub struct BbManager {
    node: NodeId,
    config: BbConfig,
    net: Rc<Switchboard<MgrMsg>>,
    kv: Rc<KvClient>,
    lustre_client: lustre::LustreClient,
    files: RefCell<HashMap<String, Rc<RefCell<FileEntry>>>>,
    by_id: RefCell<HashMap<u64, Rc<RefCell<FileEntry>>>>,
    next_id: Cell<u64>,
    unflushed: Cell<u64>,
    watermark: u64,
    /// Overload thresholds in unflushed bytes (hysteresis: pressure sets
    /// above `high`, clears below `low`).
    high: u64,
    low: u64,
    pressure: Cell<bool>,
    credit_waiters: RefCell<VecDeque<ReplyHandle<Result<WriteAck, BbError>>>>,
    flush_waiters: FlushWaiters,
    flush_gate: Semaphore,
    /// Buffered-chunk flushes queued or in flight. Streaming write-through
    /// flush tasks yield the gate while this is non-zero: draining the
    /// buffer releases writer credits, so buffered chunks take priority
    /// over the open-loop write-through stream.
    chunk_pending: Cell<u64>,
    /// Single-permit lane for classified streaming extents. Coalesced
    /// extents are large; one in flight keeps the OST busy back-to-back
    /// while leaving every [`BbManager::flush_gate`] slot free for
    /// credit-releasing chunk flushes. Pressure-degraded direct chunks
    /// (the seed path) do not use this lane.
    stream_lane: Semaphore,
    stats: MgrCounters,
    /// Traffic classifier counters; `None` when admission control is off
    /// (the classifier is then a no-op and its metric names never exist).
    admit: Option<AdmitCounters>,
    /// Chunk keys expected resident in the buffer, with their sealed CRCs:
    /// `(file_id, seq) → crc`. The scrubber's and rebalancer's work list.
    resident: RefCell<BTreeMap<(u64, u64), u32>>,
    scrub_cursor: Cell<(u64, u64)>,
    scrub_stop: Cell<bool>,
    scrub: ScrubCounters,
    pressure_stats: PressureCounters,
    integrity: IntegrityCounters,
    /// The shared membership view (same object the clients route through).
    view: Rc<Membership>,
    /// Ring as of the last epoch the rebalancer processed. Diffing it
    /// against the live ring finds exactly the keys whose owners changed —
    /// the ≈ k/n consistent-hashing remap set, not the whole key space.
    last_ring: RefCell<HashRing<usize>>,
    /// Epoch `last_ring` corresponds to.
    last_epoch: Cell<u64>,
    /// Chunks queued for migration (pinned ones queued ahead).
    rebalance_pending: RefCell<VecDeque<(u64, u64)>>,
    /// Chunks mid-migration; the scrubber skips these (a half-established
    /// replica set must not be "repaired" concurrently).
    migrating: RefCell<BTreeSet<(u64, u64)>>,
    /// Chunks currently pinned (unflushed): these migrate first, and their
    /// pin is re-established on the new owners before old copies go away.
    pinned: RefCell<BTreeSet<(u64, u64)>>,
    rebalance_stop: Cell<bool>,
    rebal: RebalanceCounters,
    /// Placement engine (reader telemetry, optimizer queue, `bb.place.*`
    /// counters); `None` when placement is off, so no tracker exists and
    /// no metric name is ever registered (defaults byte-identity).
    place: Option<PlaceState>,
}

impl BbManager {
    /// Spawn the manager on `node`, routing through the shared membership
    /// `view` (the same object every client of the deployment uses).
    pub fn spawn(
        stack: Rc<RdmaStack>,
        node: NodeId,
        view: Rc<Membership>,
        lustre: Rc<LustreCluster>,
        config: BbConfig,
    ) -> Rc<BbManager> {
        let fabric = Rc::clone(stack.fabric());
        // manager control traffic rides the verbs fabric too
        let net = Switchboard::new(Rc::clone(&fabric), *stack.profile());
        let kv = KvClient::with_view(
            Rc::clone(&stack),
            node,
            Rc::clone(&view),
            crate::client::kv_client_config(&config),
        );
        // budget against the *physical* slab footprint of a chunk item
        // (key + length header + payload), not its logical size — a chunk
        // just over a class boundary can occupy a whole page
        let slab = rkv::slab::SlabConfig::default();
        let item = config.chunk_size as usize + 32;
        let footprint = slab
            .item_footprint(item)
            .expect("chunk_size exceeds the KV item limit") as f64;
        let density = (config.chunk_size as f64 / footprint).min(1.0);
        let usable = (config.kv_mem_per_server * config.kv_servers as u64) as f64 * density;
        let watermark = (usable * config.flush_watermark) as u64;
        let high = (usable * config.bb_high_watermark) as u64;
        let low = (usable * config.bb_low_watermark) as u64;
        let mgr = Rc::new(BbManager {
            node,
            config,
            net: Rc::clone(&net),
            kv,
            lustre_client: lustre.client(node),
            files: RefCell::new(HashMap::new()),
            by_id: RefCell::new(HashMap::new()),
            next_id: Cell::new(1),
            unflushed: Cell::new(0),
            watermark,
            high,
            low,
            pressure: Cell::new(false),
            credit_waiters: RefCell::new(VecDeque::new()),
            flush_waiters: RefCell::new(HashMap::new()),
            flush_gate: Semaphore::new(config.flusher_threads.max(1)),
            chunk_pending: Cell::new(0),
            stream_lane: Semaphore::new(1),
            stats: MgrCounters::register(fabric.sim().metrics()),
            admit: (config.bb_admit_stream_bytes > 0)
                .then(|| AdmitCounters::register(fabric.sim().metrics())),
            resident: RefCell::new(BTreeMap::new()),
            scrub_cursor: Cell::new((0, 0)),
            scrub_stop: Cell::new(false),
            scrub: ScrubCounters::register(fabric.sim().metrics()),
            pressure_stats: PressureCounters::register(fabric.sim().metrics()),
            integrity: IntegrityCounters::register(fabric.sim().metrics()),
            last_ring: RefCell::new(view.ring_snapshot()),
            last_epoch: Cell::new(view.epoch()),
            view,
            rebalance_pending: RefCell::new(VecDeque::new()),
            migrating: RefCell::new(BTreeSet::new()),
            pinned: RefCell::new(BTreeSet::new()),
            rebalance_stop: Cell::new(false),
            rebal: RebalanceCounters::register(fabric.sim().metrics()),
            place: config
                .placement_enabled()
                .then(|| PlaceState::new(fabric.sim().metrics())),
        });
        let mut rx = net.register(node, MGR_SERVICE);
        let sim = net.fabric().sim().clone();
        let this = Rc::clone(&mgr);
        sim.clone().spawn(async move {
            while let Ok(env) = rx.recv().await {
                sim.sleep(dur::us(2)).await;
                this.handle(env.msg);
            }
        });
        if config.scrub_interval > std::time::Duration::ZERO {
            let sim = net.fabric().sim().clone();
            let this = Rc::clone(&mgr);
            sim.clone().spawn(async move {
                loop {
                    sim.sleep(this.config.scrub_interval).await;
                    if this.scrub_stop.get() {
                        break;
                    }
                    this.scrub_tick().await;
                }
            });
        }
        if config.rebalance_interval > std::time::Duration::ZERO {
            let sim = net.fabric().sim().clone();
            let this = Rc::clone(&mgr);
            sim.clone().spawn(async move {
                loop {
                    sim.sleep(this.config.rebalance_interval).await;
                    if this.rebalance_stop.get() {
                        break;
                    }
                    this.rebalance_tick().await;
                }
            });
        }
        if mgr.place.is_some() && config.bb_place_interval > std::time::Duration::ZERO {
            let sim = net.fabric().sim().clone();
            let this = Rc::clone(&mgr);
            sim.clone().spawn(async move {
                loop {
                    sim.sleep(this.config.bb_place_interval).await;
                    let place = this.place.as_ref().expect("loop gated on Some");
                    if place.stop.get() {
                        break;
                    }
                    this.place_tick().await;
                }
            });
        }
        mgr
    }

    /// Stop the background scrubber after its current tick (lets
    /// simulations quiesce; called from [`crate::BbDeployment::shutdown`]).
    pub fn stop_scrub(&self) {
        self.scrub_stop.set(true);
    }

    /// Stop the background rebalancer after its current tick (lets
    /// simulations quiesce; called from [`crate::BbDeployment::shutdown`]).
    pub fn stop_rebalance(&self) {
        self.rebalance_stop.set(true);
    }

    /// Stop the background placement optimizer after its current tick
    /// (lets simulations quiesce; called from
    /// [`crate::BbDeployment::shutdown`]). A no-op when placement is off.
    pub fn stop_place(&self) {
        if let Some(place) = &self.place {
            place.stop.set(true);
        }
    }

    /// Placement moves still queued behind the migration budget. Zero
    /// means the optimizer has converged on the telemetry it has seen.
    pub fn place_backlog(&self) -> usize {
        self.place
            .as_ref()
            .map(|p| p.pending.borrow().len())
            .unwrap_or(0)
    }

    /// The shared reader-telemetry tracker; `None` when placement is off.
    pub(crate) fn access_tracker(&self) -> Option<&Rc<AccessTracker>> {
        self.place.as_ref().map(|p| &p.tracker)
    }

    /// Chunks still queued (or being scanned in) for migration. Zero —
    /// once [`BbManager::rebalance_epoch`] has caught up with the view —
    /// means the ring has converged.
    pub fn rebalance_backlog(&self) -> usize {
        self.rebalance_pending.borrow().len() + self.migrating.borrow().len()
    }

    /// The membership epoch the rebalancer has fully processed.
    pub fn rebalance_epoch(&self) -> u64 {
        self.last_epoch.get()
    }

    /// Fabric node of the manager.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The manager's control switchboard (clients call through this).
    pub fn net(&self) -> &Rc<Switchboard<MgrMsg>> {
        &self.net
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MgrStats {
        self.stats.snapshot()
    }

    /// Unflushed buffered bytes (flow-control pressure).
    pub fn unflushed_bytes(&self) -> u64 {
        self.unflushed.get()
    }

    fn sim(&self) -> &simkit::Sim {
        self.net.fabric().sim()
    }

    fn handle(self: &Rc<Self>, msg: MgrMsg) {
        match msg {
            MgrMsg::Create { path, reply } => {
                let r = self.create(&path);
                reply.send(r, 64);
            }
            MgrMsg::ChunkReady {
                file_id,
                seq,
                len,
                crc,
                reply,
            } => {
                let entry = self.by_id.borrow().get(&file_id).cloned();
                let Some(entry) = entry else {
                    reply.send(Err(BbError::NotFound(format!("file_id {file_id}"))), 16);
                    return;
                };
                self.resident.borrow_mut().insert((file_id, seq), crc);
                // the writer pinned the chunk before announcing it; track
                // the pin so a migration carries it to the new owners
                self.pinned.borrow_mut().insert((file_id, seq));
                self.unflushed.set(self.unflushed.get() + len);
                if let Some(tx) = &entry.borrow().flush_tx {
                    if tx.try_send(FlushItem::Chunk { seq, len, crc }).is_ok() {
                        self.chunk_pending.set(self.chunk_pending.get() + 1);
                    }
                }
                if !self.pressure.get() && self.unflushed.get() > self.high {
                    self.pressure.set(true);
                    self.pressure_stats.enter.inc();
                    self.sim()
                        .flight_record("bb.manager", "pressure_enter", || {
                            format!("unflushed={} high={}", self.unflushed.get(), self.high)
                        });
                }
                let streaming = self.classify_write(&entry, len);
                if self.pressure.get() {
                    // overloaded: ack immediately with the pressure flag so
                    // the writer degrades to write-through instead of
                    // queueing more bytes behind the flusher
                    reply.send(
                        Ok(WriteAck {
                            pressure: true,
                            write_through: streaming,
                        }),
                        16,
                    );
                } else if streaming {
                    // classified long-sequential: ack immediately and steer
                    // the writer to Lustre write-through. This chunk is
                    // already buffered and flushes normally; only the
                    // file's remaining chunks bypass the buffer.
                    reply.send(
                        Ok(WriteAck {
                            pressure: false,
                            write_through: true,
                        }),
                        16,
                    );
                } else if self.unflushed.get() <= self.watermark {
                    reply.send(
                        Ok(WriteAck {
                            pressure: false,
                            write_through: false,
                        }),
                        16,
                    );
                } else {
                    self.stats.watermark_stalls.inc();
                    self.credit_waiters.borrow_mut().push_back(reply);
                }
            }
            MgrMsg::ChunkDirect {
                file_id,
                seq,
                data,
                crc,
                reply,
            } => {
                let entry = self.by_id.borrow().get(&file_id).cloned();
                let Some(entry) = entry else {
                    reply.send(Err(BbError::NotFound(format!("file_id {file_id}"))), 16);
                    return;
                };
                // the direct path bypasses the KV tier's digest check, so
                // verify here before the bytes can reach Lustre
                if integrity::chunk_crc(&chunk_key(file_id, seq), &data) != crc {
                    self.integrity.checksum_fail.inc();
                    reply.send(Err(BbError::Kv(ClientError::TransferFailed)), 16);
                    return;
                }
                if self.pressure.get() {
                    self.pressure_stats.writethrough.inc();
                }
                let streaming = self.classify_write(&entry, data.len() as u64);
                if streaming {
                    if let Some(admit) = &self.admit {
                        admit.writethrough_chunks.inc();
                    }
                }
                let tx = entry.borrow().flush_tx.clone();
                match tx {
                    Some(tx) => {
                        let _ = tx.try_send(FlushItem::Direct {
                            seq,
                            data,
                            streaming,
                        });
                        reply.send(
                            Ok(WriteAck {
                                pressure: self.pressure.get(),
                                write_through: streaming,
                            }),
                            16,
                        );
                    }
                    None => {
                        reply.send(Err(BbError::Busy("no flusher for this scheme".into())), 16);
                    }
                }
            }
            MgrMsg::Close {
                file_id,
                size,
                crcs,
                reply,
            } => {
                let entry = self.by_id.borrow().get(&file_id).cloned();
                let Some(entry) = entry else {
                    reply.send(Err(BbError::NotFound(format!("file_id {file_id}"))), 16);
                    return;
                };
                {
                    let mut e = entry.borrow_mut();
                    e.size = size;
                    e.crcs = crcs;
                    match e.flush_tx.take() {
                        Some(tx) => {
                            e.state = FileState::Closed;
                            let _ = tx.try_send(FlushItem::Close { size });
                            // dropping tx closes the flusher's queue
                        }
                        None => {
                            // sync scheme: the client already persisted.
                            // Its chunks never pass through ChunkReady, so
                            // enrol them for scrubbing here.
                            e.state = FileState::Flushed;
                            let mut resident = self.resident.borrow_mut();
                            for (seq, crc) in e.crcs.iter().enumerate() {
                                resident.insert((file_id, seq as u64), *crc);
                            }
                        }
                    }
                }
                let e = entry.borrow();
                if e.state == FileState::Flushed {
                    self.notify_flushed(e.file_id, FileState::Flushed);
                }
                reply.send(Ok(()), 16);
            }
            MgrMsg::WaitFlushed { path, reply } => {
                let entry = self.files.borrow().get(&path).cloned();
                match entry {
                    None => reply.send(Err(BbError::NotFound(path)), 16),
                    Some(e) => {
                        let st = e.borrow().state;
                        match st {
                            FileState::Flushed | FileState::Lost => {
                                reply.send(Ok(st), 16);
                            }
                            _ => {
                                let id = e.borrow().file_id;
                                self.flush_waiters
                                    .borrow_mut()
                                    .entry(id)
                                    .or_default()
                                    .push(reply);
                            }
                        }
                    }
                }
            }
            MgrMsg::Open { path, reply } => {
                let r = match self.files.borrow().get(&path) {
                    None => Err(BbError::NotFound(path)),
                    Some(e) => {
                        let e = e.borrow();
                        Ok(BbFileMeta {
                            file_id: e.file_id,
                            size: e.size,
                            state: e.state,
                            chunk_size: self.config.chunk_size,
                            lustre_path: lustre_path(&e.path),
                            chunk_crcs: e.crcs.clone(),
                        })
                    }
                };
                let bytes = 128 + r.as_ref().map_or(0, |m| 4 * m.chunk_crcs.len() as u64);
                reply.send(r, bytes);
            }
            MgrMsg::Delete { path, reply } => {
                let busy = self
                    .files
                    .borrow()
                    .get(&path)
                    .map(|e| e.borrow().state == FileState::Writing)
                    .unwrap_or(false);
                if busy {
                    reply.send(Err(BbError::Busy(path)), 16);
                    return;
                }
                let removed = self.files.borrow_mut().remove(&path);
                let r = match removed {
                    None => Err(BbError::NotFound(path)),
                    Some(e) => {
                        let e = e.borrow();
                        self.by_id.borrow_mut().remove(&e.file_id);
                        let fid = e.file_id;
                        if self.view.overrides_len() > 0 {
                            // sweep the file's full chunk range, not just
                            // the resident map: a chunk evicted from the
                            // buffer must not leave its override behind
                            // to accumulate across file churn
                            let n = (e.crcs.len() as u64)
                                .max(e.size.div_ceil(self.config.chunk_size.max(1)));
                            for s in 0..n {
                                self.view.clear_override(&chunk_key(fid, s));
                            }
                        }
                        if let Some(place) = &self.place {
                            place.tracker.forget_file(fid);
                            place
                                .pending
                                .borrow_mut()
                                .retain(|((f, _), _, _)| *f != fid);
                            place.queued.borrow_mut().retain(|(f, _)| *f != fid);
                        }
                        self.resident.borrow_mut().retain(|(f, _), _| *f != fid);
                        self.pinned.borrow_mut().retain(|(f, _)| *f != fid);
                        self.rebalance_pending
                            .borrow_mut()
                            .retain(|(f, _)| *f != fid);
                        Ok(BbFileMeta {
                            file_id: e.file_id,
                            size: e.size,
                            state: e.state,
                            chunk_size: self.config.chunk_size,
                            lustre_path: lustre_path(&e.path),
                            chunk_crcs: e.crcs.clone(),
                        })
                    }
                };
                let bytes = 128 + r.as_ref().map_or(0, |m| 4 * m.chunk_crcs.len() as u64);
                reply.send(r, bytes);
            }
            MgrMsg::List { prefix, reply } => {
                let mut v: Vec<String> = self
                    .files
                    .borrow()
                    .keys()
                    .filter(|p| p.starts_with(&prefix))
                    .cloned()
                    .collect();
                v.sort();
                let bytes = v.iter().map(|p| p.len() as u64 + 8).sum::<u64>().max(64);
                reply.send(v, bytes);
            }
        }
    }

    fn create(self: &Rc<Self>, path: &str) -> Result<u64, BbError> {
        if self.files.borrow().contains_key(path) {
            return Err(BbError::Exists(path.to_owned()));
        }
        let file_id = self.next_id.get();
        self.next_id.set(file_id + 1);
        let needs_flusher = matches!(
            self.config.scheme,
            Scheme::AsyncLustre | Scheme::HybridLocality
        );
        let flush_tx = if needs_flusher {
            let (tx, rx) = mpsc::unbounded();
            let this = Rc::clone(self);
            let lpath = lustre_path(path);
            let fpath = path.to_owned();
            self.net
                .fabric()
                .sim()
                .clone()
                .spawn(async move { this.run_flusher(file_id, fpath, lpath, rx).await });
            Some(tx)
        } else {
            None
        };
        let entry = Rc::new(RefCell::new(FileEntry {
            path: path.to_owned(),
            file_id,
            size: 0,
            state: FileState::Writing,
            flush_tx,
            crcs: Vec::new(),
            admit_bytes: 0,
            admit_last: 0,
            streaming: false,
        }));
        self.files
            .borrow_mut()
            .insert(path.to_owned(), Rc::clone(&entry));
        self.by_id.borrow_mut().insert(file_id, entry);
        Ok(file_id)
    }

    /// Windowed traffic classifier: accumulate a file's bytes written
    /// within one admission window; crossing
    /// [`BbConfig::bb_admit_stream_bytes`] inside a window labels it
    /// long-sequential (sticky). An idle gap longer than
    /// [`BbConfig::bb_admit_window`] resets the count, so spaced bursts
    /// never classify no matter their total volume. Returns the file's
    /// streaming label; a no-op (always `false`) when admission is off.
    fn classify_write(&self, entry: &Rc<RefCell<FileEntry>>, len: u64) -> bool {
        let Some(admit) = &self.admit else {
            return false;
        };
        let threshold = self.config.bb_admit_stream_bytes;
        let window = self.config.bb_admit_window.as_nanos() as u64;
        let now = self.sim().now().as_nanos();
        let mut e = entry.borrow_mut();
        if e.streaming {
            return true;
        }
        if e.admit_last != 0 && now.saturating_sub(e.admit_last) > window {
            e.admit_bytes = 0;
            admit.window_resets.inc();
        }
        e.admit_last = now;
        e.admit_bytes += len;
        if e.admit_bytes >= threshold {
            e.streaming = true;
            admit.stream_detected.inc();
            let (fid, bytes) = (e.file_id, e.admit_bytes);
            self.sim().flight_record("bb.admit", "stream_detected", || {
                format!("file_id={fid} window_bytes={bytes}")
            });
        }
        e.streaming
    }

    fn release_credit(&self, len: u64) {
        self.unflushed.set(self.unflushed.get().saturating_sub(len));
        if self.pressure.get() && self.unflushed.get() <= self.low {
            self.pressure.set(false);
            self.pressure_stats.exit.inc();
            self.sim().flight_record("bb.manager", "pressure_exit", || {
                format!("unflushed={} low={}", self.unflushed.get(), self.low)
            });
        }
        let mut waiters = self.credit_waiters.borrow_mut();
        while self.unflushed.get() <= self.watermark {
            match waiters.pop_front() {
                // streaming files never park here (their acks are sent
                // immediately), so the drained credit carries no routing
                Some(reply) => reply.send(
                    Ok(WriteAck {
                        pressure: self.pressure.get(),
                        write_through: false,
                    }),
                    16,
                ),
                None => break,
            }
        }
    }

    fn notify_flushed(&self, file_id: u64, state: FileState) {
        if let Some(waiters) = self.flush_waiters.borrow_mut().remove(&file_id) {
            for w in waiters {
                w.send(Ok(state), 16);
            }
        }
    }

    /// Per-file persistence task: drain chunk notifications, pull payloads
    /// from the buffer, and lay them out in the Lustre backing file.
    async fn run_flusher(
        self: Rc<Self>,
        file_id: u64,
        path: String,
        lpath: String,
        mut rx: mpsc::Receiver<FlushItem>,
    ) {
        let sim = self.net.fabric().sim().clone();
        let lfile = match self.lustre_client.create(&lpath).await {
            Ok(f) => Rc::new(f),
            Err(_) => {
                // backing store unavailable: everything becomes Lost
                self.mark_lost(file_id);
                return;
            }
        };
        let chunk_size = self.config.chunk_size;
        let mut lost = false;
        let mut inflight: Vec<simkit::JoinHandle<bool>> = Vec::new();
        let mut final_size = None;
        // write-behind aggregation for classified streams: contiguous
        // write-through chunks coalesce into stripe-sized extents, so a
        // long-sequential stream pays one OST positioning charge per
        // stripe instead of per chunk. Unclassified (pressure-degraded)
        // chunks never enter the aggregate.
        let coalesce = self
            .lustre_client
            .cluster()
            .config
            .stripe_size
            .max(chunk_size);
        let mut agg: Vec<Bytes> = Vec::new();
        let mut agg_first = 0u64;
        let mut agg_next = 0u64;
        let mut agg_bytes = 0u64;
        while let Ok(item) = rx.recv().await {
            // anything that breaks the contiguous streaming run flushes
            // the aggregate first, preserving per-file write order
            let extends_run = matches!(
                &item,
                FlushItem::Direct {
                    seq,
                    streaming: true,
                    ..
                } if agg.is_empty() || *seq == agg_next
            );
            if !extends_run && !agg.is_empty() {
                let n = agg.len() as u64;
                let data = concat_extent(&mut agg);
                inflight.push(self.spawn_direct_flush(&lfile, file_id, agg_first, n, data, true));
                agg_bytes = 0;
            }
            match item {
                FlushItem::Chunk { seq, len, crc } => {
                    let this = Rc::clone(&self);
                    let lfile = Rc::clone(&lfile);
                    inflight.push(sim.spawn(async move {
                        let _gate = this.flush_gate.acquire().await;
                        let _sp =
                            this.net
                                .fabric()
                                .sim()
                                .span("bb.flush_chunk", "bb", this.node.0, seq);
                        let key = chunk_key(file_id, seq);
                        // A transport error is not proof of loss: the
                        // replica set may be mid-crash/restart. Retry with
                        // bounded backoff and only count the chunk lost on
                        // a definitive miss (`Ok(None)`: every replica
                        // answered, none had a *verifiable* copy) or retry
                        // exhaustion. The read-back is checksum-verified so
                        // a corrupt buffer copy can never reach Lustre.
                        let sim = this.net.fabric().sim().clone();
                        let mut got =
                            integrity::get_verified(&this.kv, &this.integrity, &key).await;
                        let mut attempt = 0u32;
                        while got.is_err() && attempt < this.config.kv_retries + 3 {
                            let delay = this
                                .config
                                .kv_backoff
                                .saturating_mul(8 << attempt.min(20))
                                .min(std::time::Duration::from_millis(10));
                            attempt += 1;
                            sim.sleep(delay).await;
                            got = integrity::get_verified(&this.kv, &this.integrity, &key).await;
                        }
                        let ok = match got {
                            // `flags` must also match the manifest CRC the
                            // writer declared for this seq
                            Ok(Some(v)) if v.flags == crc => {
                                // verify-then-count: the write ack carries
                                // the OSS's commit checksum, so a corrupted
                                // commit comes back as CommitMismatch and
                                // the chunk never counts as flushed
                                let r = match lfile.write_at(seq * chunk_size, v.data).await {
                                    Ok(()) => true,
                                    Err(LustreError::CommitMismatch { .. }) => {
                                        this.integrity.checksum_fail.inc();
                                        this.sim().flight_record(
                                            "bb.manager",
                                            "flush_writeback_corrupt",
                                            || format!("file_id={file_id} seq={seq}"),
                                        );
                                        false
                                    }
                                    Err(_) => false,
                                };
                                if r {
                                    this.stats.chunks_flushed.inc();
                                    this.stats.bytes_flushed.add(len);
                                } else {
                                    this.stats.chunks_lost.inc();
                                }
                                r
                            }
                            _ => {
                                this.stats.chunks_lost.inc();
                                false
                            }
                        };
                        // flushed (or given up): lift the eviction pin
                        this.kv.unpin(&key).await;
                        this.pinned.borrow_mut().remove(&(file_id, seq));
                        this.release_credit(len);
                        this.chunk_pending.set(this.chunk_pending.get() - 1);
                        ok
                    }));
                }
                FlushItem::Direct {
                    seq,
                    data,
                    streaming,
                } => {
                    if streaming {
                        if agg.is_empty() {
                            agg_first = seq;
                        }
                        agg_next = seq + 1;
                        agg_bytes += data.len() as u64;
                        agg.push(data);
                        if agg_bytes >= coalesce {
                            let n = agg.len() as u64;
                            let data = concat_extent(&mut agg);
                            inflight.push(
                                self.spawn_direct_flush(&lfile, file_id, agg_first, n, data, true),
                            );
                            agg_bytes = 0;
                        }
                    } else {
                        inflight
                            .push(self.spawn_direct_flush(&lfile, file_id, seq, 1, data, false));
                    }
                }
                FlushItem::Close { size } => {
                    final_size = Some(size);
                    break;
                }
            }
        }
        // the channel can close without a `Close` (file torn down while
        // writing): never strand a partial aggregate
        if !agg.is_empty() {
            let n = agg.len() as u64;
            let data = concat_extent(&mut agg);
            inflight.push(self.spawn_direct_flush(&lfile, file_id, agg_first, n, data, true));
        }
        for h in inflight {
            if !h.await {
                lost = true;
            }
        }
        if let Some(size) = final_size {
            // pad the logical size: write_pos may be short of `size` only
            // when the final chunk was lost, which is covered by `lost`
            let _ = size;
        }
        let close_ok = lfile.close().await.is_ok();
        let state = if lost || !close_ok {
            FileState::Lost
        } else {
            FileState::Flushed
        };
        if state == FileState::Lost {
            self.sim().flight_record("bb.manager", "flush_lost", || {
                format!("file_id={file_id} close_ok={close_ok}")
            });
        }
        if let Some(entry) = self.by_id.borrow().get(&file_id) {
            entry.borrow_mut().state = state;
        }
        self.notify_flushed(file_id, state);
        let _ = path;
    }

    /// Persist one write-through extent (`chunks` coalesced direct chunks
    /// starting at `first_seq`). Verify-then-count: the extent only counts
    /// as persisted once the write ack's commit checksum matches the bytes
    /// sent — a torn or corrupted commit must surface as loss, never as
    /// success. Streaming extents ride the single-permit
    /// [`BbManager::stream_lane`] and yield while buffered-chunk flushes
    /// are queued — those release writer credits, so the open-loop
    /// write-through stream must never crowd them out of the gate or the
    /// device queue. A non-streaming (pressure-degraded) chunk takes the
    /// gate directly, exactly like the seed path.
    fn spawn_direct_flush(
        self: &Rc<Self>,
        lfile: &Rc<lustre::LustreFile>,
        file_id: u64,
        first_seq: u64,
        chunks: u64,
        data: Bytes,
        streaming: bool,
    ) -> simkit::JoinHandle<bool> {
        let this = Rc::clone(self);
        let lfile = Rc::clone(lfile);
        let chunk_size = self.config.chunk_size;
        let sim = self.net.fabric().sim().clone();
        sim.clone().spawn(async move {
            let _lane = if streaming {
                let lane = this.stream_lane.acquire().await;
                while this.chunk_pending.get() > 0 {
                    sim.sleep(dur::ms(1)).await;
                }
                Some(lane)
            } else {
                None
            };
            let _gate = this.flush_gate.acquire().await;
            let mut ok = false;
            for _ in 0..2 {
                match lfile.write_at(first_seq * chunk_size, data.clone()).await {
                    Ok(()) => {
                        ok = true;
                        break;
                    }
                    Err(LustreError::CommitMismatch { .. }) => {
                        this.integrity.checksum_fail.inc();
                    }
                    Err(_) => {}
                }
            }
            if ok {
                this.stats.chunks_direct.add(chunks);
            } else {
                this.stats.chunks_lost.add(chunks);
                this.sim()
                    .flight_record("bb.manager", "direct_writeback_corrupt", || {
                        format!("file_id={file_id} first_seq={first_seq} chunks={chunks}")
                    });
            }
            ok
        })
    }

    fn mark_lost(&self, file_id: u64) {
        self.sim()
            .flight_record("bb.manager", "file_lost", || format!("file_id={file_id}"));
        if let Some(entry) = self.by_id.borrow().get(&file_id) {
            entry.borrow_mut().state = FileState::Lost;
        }
        self.notify_flushed(file_id, FileState::Lost);
    }

    /// One scrubber round: verify up to `scrub_batch` resident chunks,
    /// resuming from the cursor (round-robin over the key space so every
    /// chunk is eventually visited regardless of churn).
    async fn scrub_tick(self: &Rc<Self>) {
        let batch: Vec<((u64, u64), u32)> = {
            let resident = self.resident.borrow();
            if resident.is_empty() {
                return;
            }
            let cursor = self.scrub_cursor.get();
            let mut out: Vec<_> = resident
                .range(cursor..)
                .take(self.config.scrub_batch.max(1))
                .map(|(k, v)| (*k, *v))
                .collect();
            let missing = self.config.scrub_batch.max(1) - out.len();
            if missing > 0 {
                out.extend(
                    resident
                        .range(..cursor)
                        .take(missing)
                        .map(|(k, v)| (*k, *v)),
                );
            }
            out
        };
        if let Some(((fid, seq), _)) = batch.last() {
            self.scrub_cursor.set((*fid, seq + 1));
        }
        for ((file_id, seq), crc) in batch {
            self.scrub_one(file_id, seq, crc).await;
        }
    }

    /// Verify one chunk across its replica set and repair divergent
    /// copies. A missing copy is legal (LRU eviction); a copy that fails
    /// its digest is rewritten from the first good replica, or from Lustre
    /// when the file is already flushed. Corruption with no good copy
    /// anywhere counts `bb.scrub.unrepairable` (the read path will surface
    /// it loudly, never silently).
    async fn scrub_one(&self, file_id: u64, seq: u64, crc: u32) {
        if self.migrating.borrow().contains(&(file_id, seq)) {
            // mid-migration: the replica set is being re-established by
            // the rebalancer; scrubbing it now would double-repair
            return;
        }
        let key = chunk_key(file_id, seq);
        let Ok(replicas) = self.kv.replicas(&key) else {
            return;
        };
        self.scrub.scanned.inc();
        let mut good: Option<Bytes> = None;
        let mut bad: Vec<usize> = Vec::new();
        let mut present = 0usize;
        let mut errors = 0usize;
        for &idx in &replicas {
            match self.kv.get_from(idx, &key).await {
                Ok(Some(v)) => {
                    present += 1;
                    if integrity::chunk_crc(&key, &v.data) == crc {
                        if good.is_none() {
                            good = Some(v.data);
                        }
                    } else {
                        self.integrity.checksum_fail.inc();
                        bad.push(idx);
                    }
                }
                Ok(None) => {}         // evicted: legal, not an integrity event
                Err(_) => errors += 1, // replica unreachable: revisit next round
            }
        }
        if present == 0 {
            if errors == 0 {
                // Every live replica definitively answered empty. Under
                // elastic membership that is not yet proof the chunk left
                // the buffer: a not-yet-migrated copy may still sit on an
                // old owner, and forgetting the key here would hide it
                // from the rebalancer. Check the rest of the roster first.
                if self.view.epoch() > 0 {
                    for idx in 0..self.view.roster_len() {
                        if replicas.contains(&idx) {
                            continue;
                        }
                        if matches!(self.kv.get_from(idx, &key).await, Ok(Some(_))) {
                            return; // awaiting migration; rebalancer owns it
                        }
                    }
                }
                self.resident.borrow_mut().remove(&(file_id, seq));
            }
            return;
        }
        if bad.is_empty() {
            return;
        }
        let good = match good {
            Some(g) => Some(g),
            None => self.lustre_chunk(file_id, seq, crc).await,
        };
        match good {
            Some(data) => {
                for idx in bad {
                    if self
                        .kv
                        .set_to(idx, &key, data.clone(), crc, 0)
                        .await
                        .is_ok()
                    {
                        self.scrub.repaired.inc();
                    }
                }
            }
            None => {
                // No authoritative copy right now. While the file is still
                // flushing, the flusher's own verified read-back decides
                // the chunk's fate — retry next round rather than jumping
                // to a verdict. Once the file is terminal the damage is
                // permanent: count it once and stop scanning the chunk.
                let terminal = self.by_id.borrow().get(&file_id).is_none_or(|e| {
                    matches!(e.borrow().state, FileState::Flushed | FileState::Lost)
                });
                if terminal {
                    self.scrub.unrepairable.add(bad.len() as u64);
                    self.resident.borrow_mut().remove(&(file_id, seq));
                    // permanent data damage: freeze the flight-recorder
                    // rings so the events leading here survive for triage
                    let sim = self.sim();
                    sim.flight_record("bb.scrub", "unrepairable", || {
                        format!("file_id={file_id} seq={seq} bad_replicas={}", bad.len())
                    });
                    sim.flight().trigger(
                        sim.now().as_nanos(),
                        &format!("unrepairable scrub: file_id={file_id} seq={seq}"),
                    );
                }
            }
        }
    }

    /// One rebalancer round. When the membership epoch moved since the
    /// last processed ring, diff every resident chunk's replica set
    /// between that ring and the live one and queue the movers — pinned
    /// (unflushed, buffer-only) chunks first, since they have no Lustre
    /// fallback if their old owner drains away. Then migrate up to
    /// `rebalance_batch` queued chunks.
    async fn rebalance_tick(self: &Rc<Self>) {
        let epoch = self.view.epoch();
        let last = self.last_epoch.get();
        if epoch != last {
            let new_ring = self.view.ring_snapshot();
            let r = self.config.kv_replication.max(1);
            let mut movers_pinned: Vec<(u64, u64)> = Vec::new();
            let mut movers: Vec<(u64, u64)> = Vec::new();
            {
                let resident = self.resident.borrow();
                let old_ring = self.last_ring.borrow();
                let pinned = self.pinned.borrow();
                for &(fid, seq) in resident.keys() {
                    let key = chunk_key(fid, seq);
                    let old: Vec<usize> = old_ring.route_n(&key, r).into_iter().copied().collect();
                    let new: Vec<usize> = new_ring.route_n(&key, r).into_iter().copied().collect();
                    if old != new {
                        if pinned.contains(&(fid, seq)) {
                            movers_pinned.push((fid, seq));
                        } else {
                            movers.push((fid, seq));
                        }
                    }
                }
            }
            {
                let mut pending = self.rebalance_pending.borrow_mut();
                let carried: Vec<(u64, u64)> = pending.drain(..).collect();
                let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
                for k in movers_pinned.into_iter().chain(movers).chain(carried) {
                    if seen.insert(k) {
                        pending.push_back(k);
                    }
                }
            }
            self.rebal.epochs.add(epoch - last);
            *self.last_ring.borrow_mut() = new_ring;
            self.last_epoch.set(epoch);
        }
        for _ in 0..self.config.rebalance_batch.max(1) {
            let next = self.rebalance_pending.borrow_mut().pop_front();
            let Some((fid, seq)) = next else { break };
            self.migrate_one(fid, seq).await;
        }
    }

    /// Migrate one chunk onto its live-ring owners (which follow any
    /// placement override). A failed move re-queues on the rebalance
    /// queue; a completed copy counts `bb.rebalance.{moved,bytes}`.
    async fn migrate_one(self: &Rc<Self>, file_id: u64, seq: u64) {
        let key = chunk_key(file_id, seq);
        let Ok(desired) = self.kv.replicas(&key) else {
            return;
        };
        match self.migrate_to(file_id, seq, &desired, false).await {
            MigrateOutcome::Failed | MigrateOutcome::Busy => {
                // keep the old copies; retry from a clean slate next tick
                self.rebalance_pending
                    .borrow_mut()
                    .push_back((file_id, seq));
            }
            MigrateOutcome::Done { wrote: true, bytes } => {
                self.rebal.moved.inc();
                self.rebal.bytes.add(bytes);
            }
            _ => {}
        }
    }

    /// Establish `desired` as a chunk's replica set: copy to each missing
    /// target, verify every fresh copy by CRC read-back, carry the pin
    /// for unflushed chunks, and only then delete copies from roster
    /// members outside the set. Old copies outlive new ones until
    /// verification succeeds, so a verify failure at any point leaves at
    /// least one good copy reachable (the read path widens to the full
    /// roster once epoch > 0). With `install_override`, the routing
    /// override onto `desired` is installed after verification but
    /// before the old copies are deleted, so a concurrent reader never
    /// routes at hash owners whose copies are already gone. The chunk
    /// sits in the `migrating` guard for the whole move, keeping the
    /// scrubber off the half-established set; a move that finds the
    /// guard already held (the rebalancer and placement optimizer run
    /// as separate tasks) backs off with `Busy` rather than racing the
    /// holder's copy/delete phases. Shared by the epoch rebalancer and
    /// the placement optimizer.
    async fn migrate_to(
        self: &Rc<Self>,
        file_id: u64,
        seq: u64,
        desired: &[usize],
        install_override: bool,
    ) -> MigrateOutcome {
        let Some(&crc) = self.resident.borrow().get(&(file_id, seq)) else {
            return MigrateOutcome::Gone; // deleted or forgotten since being queued
        };
        if desired.is_empty() {
            return MigrateOutcome::Gone;
        }
        let key = chunk_key(file_id, seq);
        if !self.migrating.borrow_mut().insert((file_id, seq)) {
            return MigrateOutcome::Busy;
        }
        // Which desired owners already hold a good copy?
        let mut have: Vec<usize> = Vec::new();
        let mut source: Option<Bytes> = None;
        for &idx in desired {
            if let Ok(Some(v)) = self.kv.get_from(idx, &key).await {
                if integrity::chunk_crc(&key, &v.data) == crc {
                    have.push(idx);
                    if source.is_none() {
                        source = Some(v.data);
                    }
                }
            }
        }
        if source.is_none() {
            // Fetch from an old owner. Index-addressed ops stay valid for
            // roster members that left the ring, so a drained server's
            // copy is still reachable here.
            for idx in 0..self.view.roster_len() {
                if desired.contains(&idx) {
                    continue;
                }
                if let Ok(Some(v)) = self.kv.get_from(idx, &key).await {
                    if integrity::chunk_crc(&key, &v.data) == crc {
                        source = Some(v.data);
                        break;
                    }
                }
            }
        }
        if source.is_none() {
            source = self.lustre_chunk(file_id, seq, crc).await;
        }
        let Some(data) = source else {
            // No authoritative copy reachable right now: leave the old
            // layout alone and let the scrubber/flusher sort it out.
            self.migrating.borrow_mut().remove(&(file_id, seq));
            return MigrateOutcome::NoSource;
        };
        let mut wrote = false;
        let mut verified = true;
        for &idx in desired {
            if have.contains(&idx) {
                continue;
            }
            if self
                .kv
                .set_to(idx, &key, data.clone(), crc, 0)
                .await
                .is_err()
            {
                verified = false;
                continue;
            }
            wrote = true;
            // read back what the server actually stored before trusting it
            match self.kv.get_from(idx, &key).await {
                Ok(Some(v)) if integrity::chunk_crc(&key, &v.data) == crc => {}
                _ => {
                    self.rebal.verify_fail.inc();
                    verified = false;
                }
            }
        }
        if !verified {
            self.migrating.borrow_mut().remove(&(file_id, seq));
            return MigrateOutcome::Failed;
        }
        if self.pinned.borrow().contains(&(file_id, seq)) {
            // unflushed chunk: the new owners must hold it pinned before
            // the old pinned copies are released
            for &idx in desired {
                let _ = self.kv.pin_to(idx, &key).await;
            }
        }
        if install_override {
            // switch routing onto the verified copies before the old
            // ones disappear — same order the rebalancer gets from the
            // ring having already moved
            self.view.set_override(&key, desired.to_vec());
        }
        for idx in 0..self.view.roster_len() {
            if desired.contains(&idx) {
                continue;
            }
            let _ = self.kv.delete_from(idx, &key).await;
        }
        let bytes = data.len() as u64;
        self.migrating.borrow_mut().remove(&(file_id, seq));
        MigrateOutcome::Done { wrote, bytes }
    }

    /// One placement-optimizer round, in three phases. First, routing
    /// hygiene: overrides pointing at a server that left the active set
    /// go back to hash placement (the override is already dormant, so
    /// this changes bookkeeping, not routing) and the chunk is queued to
    /// re-converge on its hash owners. Second, decisions: every resident
    /// chunk with reader telemetry is re-costed against the topology
    /// model, and a strictly cheaper replica set is queued as a move.
    /// Third, execution: queued moves run through the rebalancer's
    /// verified-copy machinery under the per-tick migration byte budget.
    /// The routing override is installed inside the move, after the new
    /// copies are CRC-verified but before the old ones are deleted, so
    /// readers never route at data that has not arrived yet — nor at
    /// old owners whose copies are already gone. Epoch coordination:
    /// while the rebalancer still owes the view a catch-up
    /// (`epoch != last_epoch`), decisions pause; moves keep draining.
    async fn place_tick(self: &Rc<Self>) {
        let Some(place) = &self.place else { return };
        let r = self.config.kv_replication.max(1);
        let fabric = Rc::clone(self.net.fabric());

        // phase 1: drop overrides whose targets left the active set
        let stale: Vec<(u64, u64)> = {
            let resident = self.resident.borrow();
            resident
                .keys()
                .filter(|&&(fid, seq)| {
                    self.view
                        .override_of(&chunk_key(fid, seq))
                        .is_some_and(|t| t.iter().any(|&idx| !self.view.is_active(idx)))
                })
                .copied()
                .collect()
        };
        for (fid, seq) in stale {
            let key = chunk_key(fid, seq);
            self.view.clear_override(&key);
            if place.queued.borrow_mut().insert((fid, seq)) {
                // converge back onto the hash owners; no new override
                let Ok(owners) = self.kv.replicas(&key) else {
                    place.queued.borrow_mut().remove(&(fid, seq));
                    continue;
                };
                place
                    .pending
                    .borrow_mut()
                    .push_back(((fid, seq), owners, false));
            }
        }

        // phase 2: telemetry-driven decisions (paused mid-epoch-change)
        if self.view.epoch() == self.last_epoch.get() {
            for (fid, seq) in place.tracker.tracked() {
                if !self.resident.borrow().contains_key(&(fid, seq))
                    || place.queued.borrow().contains(&(fid, seq))
                    || self.migrating.borrow().contains(&(fid, seq))
                {
                    continue;
                }
                let key = chunk_key(fid, seq);
                let readers = place.tracker.readers_of(fid, seq);
                if readers.is_empty() {
                    continue;
                }
                let Ok(current) = self.kv.replicas(&key) else {
                    continue;
                };
                let order = placement::ring_order(&self.view, &key);
                if order.is_empty() {
                    continue;
                }
                let candidate = placement::rank_by_cost(&order, r, |idx| {
                    placement::read_cost(&fabric, &readers, &[self.view.server(idx).node()])
                });
                let nodes_of = |set: &[usize]| -> Vec<NodeId> {
                    set.iter()
                        .map(|&idx| self.view.server(idx).node())
                        .collect()
                };
                let cost_before = placement::read_cost(&fabric, &readers, &nodes_of(&current));
                let cost_after = placement::read_cost(&fabric, &readers, &nodes_of(&candidate));
                if cost_after < cost_before {
                    place.counters.decisions.inc();
                    place.counters.cost_before.add(cost_before);
                    place.counters.cost_after.add(cost_after);
                    self.sim().flight_record("bb.place", "decision", || {
                        format!(
                            "file_id={fid} seq={seq} cost {cost_before}->{cost_after} \
                             targets={candidate:?}"
                        )
                    });
                    place.queued.borrow_mut().insert((fid, seq));
                    place
                        .pending
                        .borrow_mut()
                        .push_back(((fid, seq), candidate, true));
                }
            }
        }

        // phase 3: execute queued moves under the migration byte budget.
        // Each queued move is popped at most once per tick (re-queues go
        // to the back and wait for the next tick), so one failing chunk
        // can neither spin the drain nor truncate the rest of the budget.
        let budget = if self.config.bb_migrate_budget == 0 {
            u64::MAX
        } else {
            self.config.bb_migrate_budget
        };
        let mut spent = 0u64;
        let mut pops = place.pending.borrow().len();
        while spent < budget && pops > 0 {
            pops -= 1;
            let next = place.pending.borrow_mut().pop_front();
            let Some(((fid, seq), targets, install)) = next else {
                break;
            };
            if !targets.iter().all(|&idx| self.view.is_active(idx)) {
                // a target left the cluster while the move sat queued:
                // the decision is stale. Drop it and clear the queued
                // mark so phase 2 can re-decide from live telemetry.
                place.queued.borrow_mut().remove(&(fid, seq));
                continue;
            }
            match self.migrate_to(fid, seq, &targets, install).await {
                MigrateOutcome::Failed | MigrateOutcome::Busy => {
                    // keep old copies (and the queued mark); retry next tick
                    place
                        .pending
                        .borrow_mut()
                        .push_back(((fid, seq), targets, install));
                }
                MigrateOutcome::Done { wrote, bytes } => {
                    if wrote {
                        place.counters.migrations.inc();
                        place.counters.bytes.add(bytes);
                        spent += bytes;
                    }
                    place.queued.borrow_mut().remove(&(fid, seq));
                }
                MigrateOutcome::Gone | MigrateOutcome::NoSource => {
                    place.queued.borrow_mut().remove(&(fid, seq));
                }
            }
        }
    }

    /// Fetch a chunk's bytes from the Lustre backing file for repair,
    /// verifying against the manifest CRC. Only flushed files qualify (an
    /// unflushed chunk has no authoritative copy outside the buffer).
    async fn lustre_chunk(&self, file_id: u64, seq: u64, crc: u32) -> Option<Bytes> {
        let entry = self.by_id.borrow().get(&file_id).cloned()?;
        let (state, size, lpath) = {
            let e = entry.borrow();
            (e.state, e.size, lustre_path(&e.path))
        };
        if state != FileState::Flushed {
            return None;
        }
        let chunk_size = self.config.chunk_size;
        let len = chunk_size.min(size.checked_sub(seq * chunk_size)?);
        let f = self.lustre_client.open(&lpath).await.ok()?;
        let data = f.read_at(seq * chunk_size, len).await.ok()?;
        let _ = f.close().await;
        (integrity::chunk_crc(&chunk_key(file_id, seq), &data) == crc).then_some(data)
    }
}
