//! The burst-buffer client: chunked writes through the KV layer with
//! scheme-specific persistence, and buffer-first reads with Lustre (and
//! scheme-C local-replica) fallback.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use netsim::NodeId;
use rkv::{KvClient, KvClientConfig};
use simkit::sync::semaphore::Semaphore;
use simkit::JoinHandle;

use hdfs::{HdfsClient, HdfsReader, HdfsWriter};
use lustre::{LustreClient, LustreError, LustreFile};

use crate::manager::{chunk_key, lustre_path, BbFileMeta, FileState, MgrMsg, MGR_SERVICE};
pub use crate::manager::BbError;
use crate::{BbConfig, BbDeployment, Scheme};

/// KV client settings derived from the burst-buffer configuration.
pub(crate) fn kv_client_config(cfg: &BbConfig) -> KvClientConfig {
    if cfg.one_sided {
        KvClientConfig {
            buf_size: cfg.chunk_size.max(1 << 20),
            ..KvClientConfig::default()
        }
    } else {
        // ablation: SEND-only protocol, everything inline
        KvClientConfig {
            pool_bufs: 0,
            inline_max: 4 << 20,
            ..KvClientConfig::default()
        }
    }
}

/// A burst-buffer client bound to one compute node.
pub struct BbClient {
    dep: Rc<BbDeployment>,
    node: NodeId,
    kv: Rc<KvClient>,
    lustre: LustreClient,
    hdfs: Option<HdfsClient>,
}

impl BbClient {
    /// Create a client on `node`.
    pub fn new(dep: Rc<BbDeployment>, node: NodeId) -> Rc<BbClient> {
        let kv = KvClient::new(
            Rc::clone(&dep.stack),
            node,
            dep.kv_servers.clone(),
            kv_client_config(&dep.config),
        );
        let lustre = dep.lustre.client(node);
        let hdfs = dep.hdfs_local.as_ref().map(|h| h.client(node));
        Rc::new(BbClient {
            dep,
            node,
            kv,
            lustre,
            hdfs,
        })
    }

    /// The client's compute node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The deployment this client talks to.
    pub fn deployment(&self) -> &Rc<BbDeployment> {
        &self.dep
    }

    /// Direct handle to the KV layer (diagnostics).
    pub fn kv(&self) -> &Rc<KvClient> {
        &self.kv
    }

    async fn mgr_call<R: 'static>(
        &self,
        bytes: u64,
        make: impl FnOnce(netsim::ReplyHandle<R>) -> MgrMsg,
    ) -> Result<R, BbError> {
        Ok(self
            .dep
            .manager
            .net()
            .call(self.node, self.dep.manager.node(), MGR_SERVICE, bytes, make)
            .await?)
    }

    /// Create a file for writing through the buffer.
    pub async fn create(self: &Rc<Self>, path: &str) -> Result<BbWriter, BbError> {
        let p = path.to_owned();
        let file_id = self
            .mgr_call(128 + path.len() as u64, |reply| MgrMsg::Create { path: p, reply })
            .await??;
        let lustre_file = match self.dep.config.scheme {
            Scheme::SyncLustre => Some(Rc::new(self.lustre.create(&lustre_path(path)).await?)),
            _ => None,
        };
        let hdfs_writer = match &self.hdfs {
            Some(h) => Some(h.create_with_replication(path, 1).await?),
            None => None,
        };
        Ok(BbWriter {
            client: Rc::clone(self),
            path: path.to_owned(),
            file_id,
            lustre_file,
            hdfs_writer,
            staged: RefCell::new(BytesMut::new()),
            seq: Cell::new(0),
            size: Cell::new(0),
            window: Rc::new(Semaphore::new(self.dep.config.write_window.max(1))),
            pending: RefCell::new(Vec::new()),
            closed: Cell::new(false),
        })
    }

    /// Open a file for reading.
    pub async fn open(self: &Rc<Self>, path: &str) -> Result<BbReader, BbError> {
        let meta = self.fetch_meta(path).await?;
        let hdfs_reader = match &self.hdfs {
            Some(h) => h.open(path).await.ok(),
            None => None,
        };
        Ok(BbReader {
            client: Rc::clone(self),
            path: path.to_owned(),
            meta: RefCell::new(meta),
            hdfs_reader,
            lustre_file: RefCell::new(None),
        })
    }

    async fn fetch_meta(&self, path: &str) -> Result<BbFileMeta, BbError> {
        let p = path.to_owned();
        self.mgr_call(128 + path.len() as u64, |reply| MgrMsg::Open { path: p, reply })
            .await?
    }

    /// Whether `path` exists.
    pub async fn exists(&self, path: &str) -> Result<bool, BbError> {
        match self.fetch_meta(path).await {
            Ok(_) => Ok(true),
            Err(BbError::NotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Delete a file everywhere: namespace, buffered chunks, Lustre
    /// backing file, and the scheme-C local replica.
    pub async fn delete(&self, path: &str) -> Result<(), BbError> {
        let p = path.to_owned();
        let meta = self
            .mgr_call(128 + path.len() as u64, |reply| MgrMsg::Delete { path: p, reply })
            .await??;
        let chunks = meta.size.div_ceil(meta.chunk_size.max(1));
        for seq in 0..chunks {
            let _ = self.kv.delete(&chunk_key(meta.file_id, seq)).await;
        }
        match self.lustre.unlink(&meta.lustre_path).await {
            Ok(()) | Err(LustreError::Mds(lustre::MdsError::NotFound(_))) => {}
            Err(e) => return Err(e.into()),
        }
        if let Some(h) = &self.hdfs {
            match h.delete(path).await {
                Ok(()) | Err(hdfs::HdfsError::Nn(hdfs::NnError::NotFound(_))) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// List paths under `prefix`.
    pub async fn list(&self, prefix: &str) -> Result<Vec<String>, BbError> {
        let p = prefix.to_owned();
        self.mgr_call(128 + prefix.len() as u64, |reply| MgrMsg::List {
            prefix: p,
            reply,
        })
        .await
        .map_err(Into::into)
    }

    /// Block until `path` is durable in Lustre (or reported lost).
    pub async fn wait_flushed(&self, path: &str) -> Result<FileState, BbError> {
        let p = path.to_owned();
        self.mgr_call(128 + path.len() as u64, |reply| MgrMsg::WaitFlushed {
            path: p,
            reply,
        })
        .await?
    }
}

type ChunkResult = Result<(), BbError>;

/// Streaming writer through the burst buffer.
pub struct BbWriter {
    client: Rc<BbClient>,
    path: String,
    file_id: u64,
    lustre_file: Option<Rc<LustreFile>>,
    hdfs_writer: Option<HdfsWriter>,
    staged: RefCell<BytesMut>,
    seq: Cell<u64>,
    size: Cell<u64>,
    window: Rc<Semaphore>,
    pending: RefCell<Vec<JoinHandle<ChunkResult>>>,
    closed: Cell<bool>,
}

impl BbWriter {
    /// The file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Bytes accepted so far.
    pub fn len(&self) -> u64 {
        self.size.get()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append data; completed chunks are pushed to the buffer (and, per
    /// scheme, to Lustre/the local replica) with bounded concurrency.
    pub async fn append(&self, mut data: Bytes) -> Result<(), BbError> {
        assert!(!self.closed.get(), "append after close");
        self.size.set(self.size.get() + data.len() as u64);
        // scheme C: the local replica takes the stream as-is (the HDFS
        // writer stages internally and pipelines per block)
        if let Some(w) = &self.hdfs_writer {
            w.append(data.clone()).await?;
        }
        let chunk_size = self.client.dep.config.chunk_size as usize;
        loop {
            let staged_len = self.staged.borrow().len();
            if staged_len + data.len() < chunk_size {
                if !data.is_empty() {
                    self.staged.borrow_mut().extend_from_slice(&data);
                }
                return Ok(());
            }
            let take = chunk_size - staged_len;
            let chunk = if staged_len == 0 {
                // fast path: a whole chunk straight from the input
                data.split_to(take)
            } else {
                let mut st = self.staged.borrow_mut();
                st.extend_from_slice(&data.split_to(take));
                std::mem::take(&mut *st).freeze()
            };
            self.submit_chunk(chunk).await;
        }
    }

    /// Launch one chunk's writes under the window limit.
    async fn submit_chunk(&self, chunk: Bytes) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        // client-side serialization cost (serial per writer)
        let sim = self.client.dep.stack.sim().clone();
        sim.sleep(simkit::dur::transfer(
            chunk.len() as u64,
            self.client.dep.config.client_write_rate,
        ))
        .await;
        let permit = self.window.acquire().await;
        let client = Rc::clone(&self.client);
        let file_id = self.file_id;
        let lustre_file = self.lustre_file.clone();
        let chunk_size = self.client.dep.config.chunk_size;
        let sim = self.client.dep.stack.sim().clone();
        let handle = sim.clone().spawn(async move {
            let _permit = permit;
            let key = chunk_key(file_id, seq);
            match client.dep.config.scheme {
                Scheme::SyncLustre => {
                    // write-through: buffer PUT and Lustre write in
                    // parallel; the ack needs both (buffer loss is
                    // tolerable, Lustre loss is not)
                    let lf = lustre_file.expect("sync scheme has a lustre handle");
                    let kv = Rc::clone(&client.kv);
                    let kv_chunk = chunk.clone();
                    let kv_task = sim.spawn(async move {
                        kv.set(&key, kv_chunk, 0, 0).await.map(|_| ())
                    });
                    lf.write_at(seq * chunk_size, chunk).await?;
                    let _ = kv_task.await; // buffer errors are non-fatal here
                    Ok(())
                }
                Scheme::AsyncLustre | Scheme::HybridLocality => {
                    let len = chunk.len() as u64;
                    match client.kv.set(&key, chunk.clone(), 0, 0).await {
                        Ok(_) => {
                            // notify the persistence manager; the ack is the
                            // flow-control credit
                            client
                                .mgr_call(48, |reply| MgrMsg::ChunkReady {
                                    file_id,
                                    seq,
                                    len,
                                    reply,
                                })
                                .await??;
                            Ok(())
                        }
                        Err(_) => {
                            // degraded path: buffer unavailable, persist
                            // through the manager directly
                            client
                                .mgr_call(len + 64, |reply| MgrMsg::ChunkDirect {
                                    file_id,
                                    seq,
                                    data: chunk,
                                    reply,
                                })
                                .await??;
                            Ok(())
                        }
                    }
                }
            }
        });
        self.pending.borrow_mut().push(handle);
    }

    /// Flush the partial tail chunk, wait for all chunk writes, persist
    /// per scheme, and seal the file at the manager.
    pub async fn close(&self) -> Result<(), BbError> {
        assert!(!self.closed.get(), "double close");
        let tail = std::mem::take(&mut *self.staged.borrow_mut());
        if !tail.is_empty() {
            self.submit_chunk(tail.freeze()).await;
        }
        let handles: Vec<_> = self.pending.borrow_mut().drain(..).collect();
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.await {
                first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        self.closed.set(true);
        if let Some(w) = &self.hdfs_writer {
            w.close().await?;
        }
        if let Some(lf) = &self.lustre_file {
            lf.close().await?;
        }
        let file_id = self.file_id;
        let size = self.size.get();
        self.client
            .mgr_call(48, |reply| MgrMsg::Close {
                file_id,
                size,
                reply,
            })
            .await??;
        Ok(())
    }
}

/// Reader with buffer-first chunk fetches.
pub struct BbReader {
    client: Rc<BbClient>,
    path: String,
    meta: RefCell<BbFileMeta>,
    hdfs_reader: Option<HdfsReader>,
    lustre_file: RefCell<Option<Rc<LustreFile>>>,
}

impl BbReader {
    /// The file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// File size.
    pub fn size(&self) -> u64 {
        self.meta.borrow().size
    }

    /// Durability state at last metadata refresh.
    pub fn state(&self) -> FileState {
        self.meta.borrow().state
    }

    /// Whether this node holds a scheme-C local replica covering `offset`.
    fn has_local_replica(&self, offset: u64) -> bool {
        match &self.hdfs_reader {
            None => false,
            Some(r) => {
                let bs = r.info().block_size;
                let bi = (offset / bs) as usize;
                r.info()
                    .blocks
                    .get(bi)
                    .map(|b| b.replicas.contains(&self.client.node))
                    .unwrap_or(false)
            }
        }
    }

    async fn lustre_handle(&self) -> Result<Rc<LustreFile>, BbError> {
        if let Some(f) = self.lustre_file.borrow().as_ref() {
            return Ok(Rc::clone(f));
        }
        let lpath = self.meta.borrow().lustre_path.clone();
        let f = Rc::new(self.client.lustre.open(&lpath).await?);
        *self.lustre_file.borrow_mut() = Some(Rc::clone(&f));
        Ok(f)
    }

    /// Fetch one whole chunk via the tiered read path.
    async fn fetch_chunk(&self, seq: u64) -> Result<Bytes, BbError> {
        let (file_id, chunk_size, size) = {
            let m = self.meta.borrow();
            (m.file_id, m.chunk_size, m.size)
        };
        let chunk_len = chunk_size.min(size - seq * chunk_size);
        let sim = self.client.dep.stack.sim().clone();
        let read_cpu = simkit::dur::transfer(chunk_len, self.client.dep.config.client_read_rate);
        // tier 0 (scheme C): node-local replica
        if self.has_local_replica(seq * chunk_size) {
            if let Some(r) = &self.hdfs_reader {
                if let Ok(b) = r.read_at(seq * chunk_size, chunk_len).await {
                    sim.sleep(read_cpu).await;
                    return Ok(b);
                }
            }
        }
        // tier 1: the buffer (RDMA GET from server DRAM)
        if let Ok(Some(v)) = self.client.kv.get(&chunk_key(file_id, seq)).await {
            sim.sleep(read_cpu).await;
            return Ok(v.data);
        }
        // tier 2: Lustre — only sound once the file is flushed
        let mut state = self.meta.borrow().state;
        if state != FileState::Flushed {
            // refresh: the flusher may have finished since open
            if let Ok(m) = self.client.fetch_meta(&self.path).await {
                state = m.state;
                *self.meta.borrow_mut() = m;
            }
        }
        if state != FileState::Flushed {
            return Err(BbError::DataUnavailable {
                path: self.path.clone(),
                seq,
            });
        }
        let lf = self.lustre_handle().await?;
        let data = lf.read_at(seq * chunk_size, chunk_len).await?;
        if self.client.dep.config.populate_on_read {
            // read-through cache fill (fire-and-forget)
            let kv = Rc::clone(&self.client.kv);
            let key = chunk_key(file_id, seq);
            let fill = data.clone();
            self.client.dep.stack.sim().spawn(async move {
                let _ = kv.set(&key, fill, 0, 0).await;
            });
        }
        Ok(data)
    }

    /// Read `len` bytes at `offset`.
    pub async fn read_at(&self, offset: u64, len: u64) -> Result<Bytes, BbError> {
        let size = self.size();
        assert!(offset + len <= size, "read past EOF");
        let chunk_size = self.meta.borrow().chunk_size;
        let mut out = BytesMut::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let seq = pos / chunk_size;
            let within = pos % chunk_size;
            let chunk = self.fetch_chunk(seq).await?;
            let take = ((chunk.len() as u64) - within).min(end - pos);
            out.extend_from_slice(&chunk[within as usize..(within + take) as usize]);
            pos += take;
        }
        Ok(out.freeze())
    }

    /// Read the whole file.
    pub async fn read_all(&self) -> Result<Bytes, BbError> {
        let size = self.size();
        if size == 0 {
            return Ok(Bytes::new());
        }
        self.read_at(0, size).await
    }

    /// Block size of the scheme-C local overlay, if present.
    pub fn local_block_size(&self) -> Option<u64> {
        self.hdfs_reader.as_ref().map(|r| r.info().block_size)
    }

    /// Replica locations per chunk-region, for locality-aware scheduling
    /// (scheme C exposes the local overlay's placement; A/B have no
    /// node-local data).
    pub fn locations(&self) -> Vec<Vec<NodeId>> {
        match &self.hdfs_reader {
            Some(r) => r.info().blocks.iter().map(|b| b.replicas.clone()).collect(),
            None => Vec::new(),
        }
    }
}
