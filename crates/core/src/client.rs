//! The burst-buffer client: chunked writes through the KV layer with
//! scheme-specific persistence, and buffer-first reads with Lustre (and
//! scheme-C local-replica) fallback.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use netsim::NodeId;
use rkv::{KvClient, KvClientConfig};
use simkit::sync::semaphore::Semaphore;
use simkit::JoinHandle;

use hdfs::{HdfsClient, HdfsReader, HdfsWriter};
use lustre::{LustreClient, LustreError, LustreFile};

use crate::integrity;
pub use crate::manager::BbError;
use crate::manager::{chunk_key, lustre_path, BbFileMeta, FileState, MgrMsg, MGR_SERVICE};
use crate::{AckMode, BbConfig, BbDeployment, Scheme};

/// KV client settings derived from the burst-buffer configuration.
pub(crate) fn kv_client_config(cfg: &BbConfig) -> KvClientConfig {
    let resilience = KvClientConfig {
        replication: cfg.kv_replication.max(1),
        op_timeout: cfg.kv_op_timeout,
        max_retries: cfg.kv_retries,
        backoff_base: cfg.kv_backoff,
        ..KvClientConfig::default()
    };
    if cfg.one_sided {
        KvClientConfig {
            buf_size: cfg.chunk_size.max(1 << 20),
            ..resilience
        }
    } else {
        // ablation: SEND-only protocol, everything inline
        KvClientConfig {
            pool_bufs: 0,
            inline_max: 4 << 20,
            ..resilience
        }
    }
}

/// Counters for the tiered read path, aggregated per deployment. Every
/// chunk a reader returns is attributed to exactly one tier, so
/// `tier_local + tier_buffer + tier_lustre` equals the total chunks
/// fetched (see [`ReadStats::chunks_fetched`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Chunks served from the scheme-C node-local replica (tier 0).
    pub tier_local: u64,
    /// Chunks served from the KV buffer (tier 1).
    pub tier_buffer: u64,
    /// Chunks served from Lustre (tier 2).
    pub tier_lustre: u64,
    /// Per-server batched-GET round trips issued by the pipelined path.
    pub multi_gets: u64,
    /// Keys carried by those round trips (`multi_get_keys / multi_gets`
    /// is the mean batch size).
    pub multi_get_keys: u64,
    /// Times a consumer had to wait on a chunk still in flight.
    pub readahead_stalls: u64,
    /// Read-through cache fills started (`populate_on_read`).
    pub fills_started: u64,
    /// Read-through cache fills skipped because the fill window was full.
    pub fill_drops: u64,
}

impl ReadStats {
    /// Total chunks fetched through any tier.
    pub fn chunks_fetched(&self) -> u64 {
        self.tier_local + self.tier_buffer + self.tier_lustre
    }

    /// Mean keys per batched-GET round trip (0 when none were issued).
    pub fn avg_batch(&self) -> f64 {
        if self.multi_gets == 0 {
            0.0
        } else {
            self.multi_get_keys as f64 / self.multi_gets as f64
        }
    }
}

/// The read-path counters as registered metrics (`bb.read.*`). [`ReadStats`]
/// is now just the frozen view assembled by [`ReadCounters::snapshot`] — the
/// live state lives in the simulation's registry, where `--metrics-json`
/// snapshots see it alongside every other layer.
pub(crate) struct ReadCounters {
    pub(crate) tier_local: simkit::telemetry::Counter,
    pub(crate) tier_buffer: simkit::telemetry::Counter,
    pub(crate) tier_lustre: simkit::telemetry::Counter,
    pub(crate) multi_gets: simkit::telemetry::Counter,
    pub(crate) multi_get_keys: simkit::telemetry::Counter,
    pub(crate) readahead_stalls: simkit::telemetry::Counter,
    pub(crate) fills_started: simkit::telemetry::Counter,
    pub(crate) fill_drops: simkit::telemetry::Counter,
}

impl ReadCounters {
    pub(crate) fn register(m: &simkit::telemetry::Registry) -> ReadCounters {
        ReadCounters {
            tier_local: m.counter("bb.read.tier_local"),
            tier_buffer: m.counter("bb.read.tier_buffer"),
            tier_lustre: m.counter("bb.read.tier_lustre"),
            multi_gets: m.counter("bb.read.multi_gets"),
            multi_get_keys: m.counter("bb.read.multi_get_keys"),
            readahead_stalls: m.counter("bb.read.readahead_stalls"),
            fills_started: m.counter("bb.read.fills_started"),
            fill_drops: m.counter("bb.read.fill_drops"),
        }
    }

    pub(crate) fn snapshot(&self) -> ReadStats {
        ReadStats {
            tier_local: self.tier_local.get(),
            tier_buffer: self.tier_buffer.get(),
            tier_lustre: self.tier_lustre.get(),
            multi_gets: self.multi_gets.get(),
            multi_get_keys: self.multi_get_keys.get(),
            readahead_stalls: self.readahead_stalls.get(),
            fills_started: self.fills_started.get(),
            fill_drops: self.fill_drops.get(),
        }
    }

    pub(crate) fn reset(&self) {
        self.tier_local.reset();
        self.tier_buffer.reset();
        self.tier_lustre.reset();
        self.multi_gets.reset();
        self.multi_get_keys.reset();
        self.readahead_stalls.reset();
        self.fills_started.reset();
        self.fill_drops.reset();
    }
}

/// Durability-ack counters (`bb.ack.*`), registered lazily by
/// [`BbDeployment::ack_counters`] on the first relaxed-mode write so the
/// names stay out of default snapshots.
pub(crate) struct AckCounters {
    /// Chunks acked at a relaxed quorum (fewer than `r` replicas).
    pub(crate) quorum_acks: simkit::telemetry::Counter,
    /// Replica tails completed asynchronously after the ack.
    pub(crate) async_replicas: simkit::telemetry::Counter,
    /// Times an ack mode could not be honoured (replica down at quorum
    /// time, or an async tail exhausted its retries).
    pub(crate) downgrade: simkit::telemetry::Counter,
    /// Times a writer had to wait for the ack-ahead window to drain
    /// before its ack (backpressure).
    pub(crate) ahead_waits: simkit::telemetry::Counter,
}

impl AckCounters {
    pub(crate) fn register(m: &simkit::telemetry::Registry) -> AckCounters {
        AckCounters {
            quorum_acks: m.counter("bb.ack.quorum_acks"),
            async_replicas: m.counter("bb.ack.async_replicas"),
            downgrade: m.counter("bb.ack.downgrade"),
            ahead_waits: m.counter("bb.ack.ahead_waits"),
        }
    }
}

/// Per-file write options ([`BbClient::create_with`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Durability ack mode for this file; `None` (default) inherits
    /// [`BbConfig::bb_ack_mode`].
    pub ack_mode: Option<AckMode>,
}

/// A burst-buffer client bound to one compute node.
pub struct BbClient {
    dep: Rc<BbDeployment>,
    node: NodeId,
    kv: Rc<KvClient>,
    lustre: LustreClient,
    hdfs: Option<HdfsClient>,
    /// Bounds concurrent `populate_on_read` cache fills (read-through
    /// fills beyond the window are dropped, not queued).
    fill_gate: Semaphore,
}

impl BbClient {
    /// Create a client on `node`. The KV client routes through the
    /// deployment's shared membership view, so it follows live
    /// joins/drains without being rebuilt.
    pub fn new(dep: Rc<BbDeployment>, node: NodeId) -> Rc<BbClient> {
        let kv = KvClient::with_view(
            Rc::clone(&dep.stack),
            node,
            Rc::clone(dep.membership()),
            kv_client_config(&dep.config),
        );
        let lustre = dep.lustre.client(node);
        let hdfs = dep.hdfs_local.as_ref().map(|h| h.client(node));
        let fill_gate = Semaphore::new(dep.config.read_window.max(1));
        Rc::new(BbClient {
            dep,
            node,
            kv,
            lustre,
            hdfs,
            fill_gate,
        })
    }

    /// The client's compute node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The deployment this client talks to.
    pub fn deployment(&self) -> &Rc<BbDeployment> {
        &self.dep
    }

    /// Direct handle to the KV layer (diagnostics).
    pub fn kv(&self) -> &Rc<KvClient> {
        &self.kv
    }

    /// RPC to the persistence manager with bounded retry. Only
    /// [`netsim::RpcError::Net`] is retried: a transport failure means the
    /// request never reached the manager, so resending cannot double-apply
    /// it. `NoReply`/`ServiceUnavailable` may follow a *processed* request
    /// (e.g. a `ChunkReady` already enqueued) and surface immediately.
    /// When a traced op rides along, the RPC stamps its wire/serve/reply
    /// points into that op's timeline.
    async fn mgr_call<R: 'static>(
        &self,
        bytes: u64,
        op: Option<simkit::OpId>,
        make: impl Fn(netsim::ReplyHandle<R>) -> MgrMsg,
    ) -> Result<R, BbError> {
        let cfg = &self.dep.config;
        let sim = self.dep.stack.sim();
        let mut attempt = 0u32;
        loop {
            let r = self
                .dep
                .manager
                .net()
                .call_traced(
                    self.node,
                    self.dep.manager.node(),
                    MGR_SERVICE,
                    bytes,
                    op,
                    &make,
                )
                .await;
            match r {
                Ok(v) => return Ok(v),
                Err(netsim::RpcError::Net(_)) if attempt < cfg.kv_retries => {
                    sim.flight_record("bb.client", "mgr_retry", || {
                        format!("node={} attempt={attempt}", self.node.0)
                    });
                    let delay = cfg
                        .kv_backoff
                        .saturating_mul(1 << attempt.min(20))
                        .min(Duration::from_millis(5));
                    attempt += 1;
                    sim.sleep(delay).await;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Create a file for writing through the buffer, with the
    /// deployment-default write options.
    pub async fn create(self: &Rc<Self>, path: &str) -> Result<BbWriter, BbError> {
        self.create_with(path, WriteOptions::default()).await
    }

    /// Create a file for writing through the buffer with per-file
    /// options (durability ack mode).
    pub async fn create_with(
        self: &Rc<Self>,
        path: &str,
        opts: WriteOptions,
    ) -> Result<BbWriter, BbError> {
        let p = path.to_owned();
        let file_id = self
            .mgr_call(128 + path.len() as u64, None, |reply| MgrMsg::Create {
                path: p.clone(),
                reply,
            })
            .await??;
        let lustre_file = match self.dep.config.scheme {
            Scheme::SyncLustre => Some(Rc::new(self.lustre.create(&lustre_path(path)).await?)),
            _ => None,
        };
        let hdfs_writer = match &self.hdfs {
            Some(h) => Some(h.create_with_replication(path, 1).await?),
            None => None,
        };
        let mode = opts.ack_mode.unwrap_or(self.dep.config.bb_ack_mode);
        let ack_quorum = mode.quorum(self.dep.config.kv_replication);
        Ok(BbWriter {
            client: Rc::clone(self),
            path: path.to_owned(),
            file_id,
            lustre_file,
            hdfs_writer,
            staged: RefCell::new(BytesMut::new()),
            seq: Cell::new(0),
            size: Cell::new(0),
            window: Rc::new(Semaphore::new(self.dep.config.write_window.max(1))),
            pending: RefCell::new(Vec::new()),
            closed: Cell::new(false),
            crcs: RefCell::new(Vec::new()),
            degraded: Rc::new(Cell::new(false)),
            ack_quorum,
            ack_ahead: Rc::new(Semaphore::new(self.dep.config.bb_ack_ahead.max(1))),
        })
    }

    /// Open a file for reading.
    pub async fn open(self: &Rc<Self>, path: &str) -> Result<BbReader, BbError> {
        let meta = self.fetch_meta(path).await?;
        let hdfs_reader = match &self.hdfs {
            Some(h) => h.open(path).await.ok(),
            None => None,
        };
        Ok(BbReader {
            core: Rc::new(ReadCore {
                client: Rc::clone(self),
                path: path.to_owned(),
                meta: RefCell::new(meta),
                hdfs_reader,
                lustre_file: RefCell::new(None),
                ready: RefCell::new(BTreeMap::new()),
                inflight: RefCell::new(BTreeMap::new()),
                fetch_gate: Semaphore::new(self.dep.config.read_window.max(1)),
            }),
        })
    }

    async fn fetch_meta(&self, path: &str) -> Result<BbFileMeta, BbError> {
        let p = path.to_owned();
        self.mgr_call(128 + path.len() as u64, None, |reply| MgrMsg::Open {
            path: p.clone(),
            reply,
        })
        .await?
    }

    /// Whether `path` exists.
    pub async fn exists(&self, path: &str) -> Result<bool, BbError> {
        match self.fetch_meta(path).await {
            Ok(_) => Ok(true),
            Err(BbError::NotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Delete a file everywhere: namespace, buffered chunks, Lustre
    /// backing file, and the scheme-C local replica.
    pub async fn delete(&self, path: &str) -> Result<(), BbError> {
        let p = path.to_owned();
        let meta = self
            .mgr_call(128 + path.len() as u64, None, |reply| MgrMsg::Delete {
                path: p.clone(),
                reply,
            })
            .await??;
        let chunks = meta.size.div_ceil(meta.chunk_size.max(1));
        // drop buffered chunks with up to `read_window` deletes in flight
        // (window 1 degenerates to the serial per-chunk loop)
        let gate = Semaphore::new(self.dep.config.read_window.max(1));
        let sim = self.dep.stack.sim().clone();
        let mut pending = Vec::with_capacity(chunks as usize);
        for seq in 0..chunks {
            let gate = gate.clone();
            let kv = Rc::clone(&self.kv);
            let key = chunk_key(meta.file_id, seq);
            pending.push(sim.spawn(async move {
                let _permit = gate.acquire().await;
                let _ = kv.delete(&key).await;
            }));
        }
        for h in pending {
            h.await;
        }
        match self.lustre.unlink(&meta.lustre_path).await {
            Ok(()) | Err(LustreError::Mds(lustre::MdsError::NotFound(_))) => {}
            Err(e) => return Err(e.into()),
        }
        if let Some(h) = &self.hdfs {
            match h.delete(path).await {
                Ok(()) | Err(hdfs::HdfsError::Nn(hdfs::NnError::NotFound(_))) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// List paths under `prefix`.
    pub async fn list(&self, prefix: &str) -> Result<Vec<String>, BbError> {
        let p = prefix.to_owned();
        self.mgr_call(128 + prefix.len() as u64, None, |reply| MgrMsg::List {
            prefix: p.clone(),
            reply,
        })
        .await
    }

    /// Block until `path` is durable in Lustre (or reported lost).
    pub async fn wait_flushed(&self, path: &str) -> Result<FileState, BbError> {
        let p = path.to_owned();
        self.mgr_call(128 + path.len() as u64, None, |reply| MgrMsg::WaitFlushed {
            path: p.clone(),
            reply,
        })
        .await?
    }
}

type ChunkResult = Result<(), BbError>;

/// Streaming writer through the burst buffer.
pub struct BbWriter {
    client: Rc<BbClient>,
    path: String,
    file_id: u64,
    lustre_file: Option<Rc<LustreFile>>,
    hdfs_writer: Option<HdfsWriter>,
    staged: RefCell<BytesMut>,
    seq: Cell<u64>,
    size: Cell<u64>,
    window: Rc<Semaphore>,
    pending: RefCell<Vec<JoinHandle<ChunkResult>>>,
    closed: Cell<bool>,
    /// Per-chunk CRC32C manifest, indexed by seq (sent with `Close`).
    crcs: RefCell<Vec<u32>>,
    /// Set when a manager ack carried the pressure flag: the writer
    /// bypasses the buffer and writes through (`ChunkDirect`) until an
    /// ack clears it (hysteresis lives in the manager). Shared with the
    /// in-flight chunk tasks.
    degraded: Rc<Cell<bool>>,
    /// Replicas that must be durable before a chunk acks (the effective
    /// [`AckMode`]'s quorum against `kv_replication`). When this equals
    /// `r` the write path is bit-for-bit the seed one.
    ack_quorum: usize,
    /// Ack-ahead window: each chunk acked with replica tails still
    /// outstanding holds one permit until its tails finish, so the
    /// acked-but-under-replicated window is bounded.
    ack_ahead: Rc<Semaphore>,
}

impl BbWriter {
    /// The file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Bytes accepted so far.
    pub fn len(&self) -> u64 {
        self.size.get()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append data; completed chunks are pushed to the buffer (and, per
    /// scheme, to Lustre/the local replica) with bounded concurrency.
    pub async fn append(&self, mut data: Bytes) -> Result<(), BbError> {
        assert!(!self.closed.get(), "append after close");
        self.size.set(self.size.get() + data.len() as u64);
        // scheme C: the local replica takes the stream as-is (the HDFS
        // writer stages internally and pipelines per block)
        if let Some(w) = &self.hdfs_writer {
            w.append(data.clone()).await?;
        }
        let chunk_size = self.client.dep.config.chunk_size as usize;
        loop {
            let staged_len = self.staged.borrow().len();
            if staged_len + data.len() < chunk_size {
                if !data.is_empty() {
                    self.staged.borrow_mut().extend_from_slice(&data);
                }
                return Ok(());
            }
            let take = chunk_size - staged_len;
            let chunk = if staged_len == 0 {
                // fast path: a whole chunk straight from the input
                data.split_to(take)
            } else {
                let mut st = self.staged.borrow_mut();
                st.extend_from_slice(&data.split_to(take));
                std::mem::take(&mut *st).freeze()
            };
            self.submit_chunk(chunk).await;
        }
    }

    /// Launch one chunk's writes under the window limit.
    async fn submit_chunk(&self, chunk: Bytes) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        // seal the chunk: its digest rides in the KV value's flags word,
        // in the manager's manifest, and (at close) in the file metadata
        let key = chunk_key(self.file_id, seq);
        let crc = integrity::chunk_crc(&key, &chunk);
        self.crcs.borrow_mut().push(crc);
        // locality placement: pick this brand-new key's replica targets
        // before any write routes it (no-op under the hash policy)
        self.client
            .dep
            .install_locality_override(self.client.node, &key);
        // client-side serialization cost (serial per writer)
        let sim = self.client.dep.stack.sim().clone();
        sim.sleep(simkit::dur::transfer(
            chunk.len() as u64,
            self.client.dep.config.client_write_rate,
        ))
        .await;
        let permit = self.window.acquire().await;
        let client = Rc::clone(&self.client);
        let file_id = self.file_id;
        let lustre_file = self.lustre_file.clone();
        let chunk_size = self.client.dep.config.chunk_size;
        let degraded = Rc::clone(&self.degraded);
        let ack_quorum = self.ack_quorum;
        let ack_ahead = Rc::clone(&self.ack_ahead);
        let sim = self.client.dep.stack.sim().clone();
        let handle = sim.clone().spawn(async move {
            let _permit = permit;
            let op = sim.op_begin("bb", "write_chunk", 0);
            let res: ChunkResult = async {
                match client.dep.config.scheme {
                    Scheme::SyncLustre => {
                        // write-through: buffer PUT and Lustre write in
                        // parallel; the ack needs both (buffer loss is
                        // tolerable, Lustre loss is not)
                        let lf = lustre_file.expect("sync scheme has a lustre handle");
                        let kv = Rc::clone(&client.kv);
                        let kv_chunk = chunk.clone();
                        let kv_task = sim
                            .spawn(async move { kv.set(&key, kv_chunk, crc, 0).await.map(|_| ()) });
                        lf.write_at(seq * chunk_size, chunk).await?;
                        sim.op_stamp(op, "lustre_write");
                        let _ = kv_task.await; // buffer errors are non-fatal here
                        sim.op_stamp(op, "kv_join");
                        Ok(())
                    }
                    Scheme::AsyncLustre | Scheme::HybridLocality => {
                        let len = chunk.len() as u64;
                        let r = client.dep.config.kv_replication.max(1);
                        let buffered = if degraded.get() {
                            // under pressure: skip the buffer entirely
                            false
                        } else if ack_quorum >= r {
                            // full-replication ack (the seed path, bit-for-bit)
                            let set = client.kv.set(&key, chunk.clone(), crc, 0).await;
                            sim.op_stamp(op, "kv_put");
                            match set {
                                // pin before acking so LRU pressure can never
                                // silently evict the unflushed chunk; the
                                // flusher unpins once it is safe in Lustre
                                Ok(_) => match client.kv.pin(&key).await {
                                    Ok(true) => {
                                        sim.op_stamp(op, "pin");
                                        true
                                    }
                                    // evicted between set and pin (or a
                                    // replica refused): drop any partial pins
                                    // and write through instead
                                    _ => {
                                        client.kv.unpin(&key).await;
                                        sim.op_stamp(op, "pin");
                                        false
                                    }
                                },
                                Err(_) => false,
                            }
                        } else {
                            put_quorum(&client, &sim, op, &key, &chunk, crc, ack_quorum, &ack_ahead)
                                .await
                        };
                        let ack = if buffered {
                            // notify the persistence manager; the ack is the
                            // flow-control credit
                            client
                                .mgr_call(48, op, |reply| MgrMsg::ChunkReady {
                                    file_id,
                                    seq,
                                    len,
                                    crc,
                                    reply,
                                })
                                .await??
                        } else {
                            // degraded path: buffer unavailable or overloaded,
                            // persist through the manager directly
                            client
                                .mgr_call(len + 64, op, |reply| MgrMsg::ChunkDirect {
                                    file_id,
                                    seq,
                                    data: chunk.clone(),
                                    crc,
                                    reply,
                                })
                                .await??
                        };
                        sim.op_stamp(op, "ack");
                        // stay (or go) write-through when the buffer is
                        // under pressure or the manager classified this
                        // file as a long-sequential stream
                        degraded.set(ack.pressure || ack.write_through);
                        Ok(())
                    }
                }
            }
            .await;
            match &res {
                Ok(()) => {
                    if let Some(done) = sim.op_finish(op) {
                        if let Some((stage, _)) = done.dominant_stage() {
                            sim.optrace()
                                .note_critical(format!("bb.critpath.write_chunk.{stage}"));
                        }
                    }
                }
                Err(_) => sim.optrace().abort(op),
            }
            res
        });
        self.pending.borrow_mut().push(handle);
    }

    /// Flush the partial tail chunk, wait for all chunk writes, persist
    /// per scheme, and seal the file at the manager.
    pub async fn close(&self) -> Result<(), BbError> {
        assert!(!self.closed.get(), "double close");
        let tail = std::mem::take(&mut *self.staged.borrow_mut());
        if !tail.is_empty() {
            self.submit_chunk(tail.freeze()).await;
        }
        let handles: Vec<_> = self.pending.borrow_mut().drain(..).collect();
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.await {
                first_err.get_or_insert(e);
            }
        }
        // Mark closed and release the per-file handles even when a chunk
        // write failed: a caller that retries after an error must not trip
        // the `double close`/`append after close` asserts, and the HDFS/
        // Lustre handles must not leak open.
        self.closed.set(true);
        if let Some(w) = &self.hdfs_writer {
            if let Err(e) = w.close().await {
                first_err.get_or_insert(e.into());
            }
        }
        if let Some(lf) = &self.lustre_file {
            if let Err(e) = lf.close().await {
                first_err.get_or_insert(e.into());
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let file_id = self.file_id;
        let size = self.size.get();
        let crcs = self.crcs.borrow().clone();
        self.client
            .mgr_call(48 + 4 * crcs.len() as u64, None, |reply| MgrMsg::Close {
                file_id,
                size,
                crcs: crcs.clone(),
                reply,
            })
            .await??;
        Ok(())
    }
}

/// Relaxed-quorum buffer PUT: write and pin the first `quorum` reachable
/// replicas synchronously, then complete the remaining replica tails
/// asynchronously under the bounded ack-ahead window. Returns whether the
/// chunk is buffered (false falls back to the manager write-through
/// path, which is strictly more durable than any ack mode asks for).
///
/// Tails are written unpinned, best-effort: pinning them would race the
/// flusher's post-persist unpin and leak pinned memory, and the mode's
/// durability contract only covers the quorum copies anyway.
#[allow(clippy::too_many_arguments)]
async fn put_quorum(
    client: &Rc<BbClient>,
    sim: &simkit::Sim,
    op: Option<simkit::OpId>,
    key: &[u8],
    chunk: &Bytes,
    crc: u32,
    quorum: usize,
    ack_ahead: &Rc<Semaphore>,
) -> bool {
    let ack = client.dep.ack_counters();
    let Ok(targets) = client.kv.replicas(key) else {
        return false;
    };
    let mut synced = 0usize;
    let mut tail: Vec<usize> = Vec::new();
    for idx in targets {
        if synced >= quorum {
            tail.push(idx);
            continue;
        }
        let ok = client
            .kv
            .set_to(idx, key, chunk.clone(), crc, 0)
            .await
            .is_ok()
            && matches!(client.kv.pin_to(idx, key).await, Ok(true));
        if ok {
            synced += 1;
        } else {
            tail.push(idx);
        }
    }
    sim.op_stamp(op, "kv_put");
    if synced == 0 {
        return false;
    }
    if synced < quorum {
        // the mode's quorum cannot be honoured (replica down): ack at
        // the copies we have — loudly, never silently wait
        ack.downgrade.inc();
        sim.flight_record("bb.ack", "downgrade", || {
            format!(
                "key={} quorum={quorum} synced={synced}",
                String::from_utf8_lossy(key)
            )
        });
    }
    if !tail.is_empty() {
        let permit = match ack_ahead.try_acquire() {
            Some(p) => p,
            None => {
                // window full: backpressure the writer until a tail drains
                ack.ahead_waits.inc();
                ack_ahead.acquire().await
            }
        };
        let kv = Rc::clone(&client.kv);
        let retries = client.dep.config.kv_retries;
        let backoff = client.dep.config.kv_backoff;
        let key = key.to_vec();
        let data = chunk.clone();
        let counters = Rc::clone(&ack);
        let sim2 = sim.clone();
        sim.spawn(async move {
            let _permit = permit;
            for idx in tail {
                let mut done = false;
                for attempt in 0..=retries {
                    if kv.set_to(idx, &key, data.clone(), crc, 0).await.is_ok() {
                        done = true;
                        break;
                    }
                    let delay = backoff
                        .saturating_mul(1 << attempt.min(20))
                        .min(Duration::from_millis(5));
                    sim2.sleep(delay).await;
                }
                if done {
                    counters.async_replicas.inc();
                } else {
                    counters.downgrade.inc();
                    sim2.flight_record("bb.ack", "downgrade", || {
                        format!(
                            "key={} async replica {idx} unreachable",
                            String::from_utf8_lossy(&key)
                        )
                    });
                }
            }
        });
    }
    ack.quorum_acks.inc();
    sim.op_stamp(op, "pin");
    true
}

/// Reader with buffer-first chunk fetches. With `read_window > 1` the
/// tiered path is pipelined: up to `read_window` chunks are in flight at
/// once, buffer GETs are batched per KV server, and contiguous
/// buffer-miss runs collapse into single Lustre reads. `read_window = 1`
/// reproduces the serial chunk-at-a-time path exactly.
pub struct BbReader {
    core: Rc<ReadCore>,
}

impl BbReader {
    /// The file path.
    pub fn path(&self) -> &str {
        &self.core.path
    }

    /// File size.
    pub fn size(&self) -> u64 {
        self.core.meta.borrow().size
    }

    /// Durability state at last metadata refresh.
    pub fn state(&self) -> FileState {
        self.core.meta.borrow().state
    }

    /// Read `len` bytes at `offset`.
    pub async fn read_at(&self, offset: u64, len: u64) -> Result<Bytes, BbError> {
        self.core.read_at(offset, len).await
    }

    /// Read the whole file.
    pub async fn read_all(&self) -> Result<Bytes, BbError> {
        let size = self.size();
        if size == 0 {
            return Ok(Bytes::new());
        }
        self.core.read_at(0, size).await
    }

    /// Block size of the scheme-C local overlay, if present.
    pub fn local_block_size(&self) -> Option<u64> {
        self.core.hdfs_reader.as_ref().map(|r| r.info().block_size)
    }

    /// Replica locations per chunk-region, for locality-aware scheduling
    /// (scheme C exposes the local overlay's placement; A/B have no
    /// node-local data).
    pub fn locations(&self) -> Vec<Vec<NodeId>> {
        match &self.core.hdfs_reader {
            Some(r) => r.info().blocks.iter().map(|b| b.replicas.clone()).collect(),
            None => Vec::new(),
        }
    }
}

/// A group fetch publishes into `ready`; consumers waiting on a chunk
/// take the group's join handle out of its shared slot.
type InflightSlot = Rc<RefCell<Option<JoinHandle<()>>>>;

/// Shared state behind a [`BbReader`]: per-file metadata plus the
/// pipelined-fetch bookkeeping (chunks ready to consume, chunks in
/// flight, and the window semaphore bounding concurrent fetches).
struct ReadCore {
    client: Rc<BbClient>,
    path: String,
    meta: RefCell<BbFileMeta>,
    hdfs_reader: Option<HdfsReader>,
    lustre_file: RefCell<Option<Rc<LustreFile>>>,
    /// Fetched chunks awaiting consumption, by seq.
    ready: RefCell<BTreeMap<u64, Result<Bytes, BbError>>>,
    /// Seqs currently being fetched; all seqs of one group share a slot.
    inflight: RefCell<BTreeMap<u64, InflightSlot>>,
    /// `read_window` permits; a group of N chunks holds N for the wire
    /// phase of its fetch.
    fetch_gate: Semaphore,
}

impl ReadCore {
    fn config(&self) -> &BbConfig {
        &self.client.dep.config
    }

    /// Whether this node holds a scheme-C local replica covering `offset`.
    fn has_local_replica(&self, offset: u64) -> bool {
        match &self.hdfs_reader {
            None => false,
            Some(r) => {
                let bs = r.info().block_size;
                let bi = (offset / bs) as usize;
                r.info()
                    .blocks
                    .get(bi)
                    .map(|b| b.replicas.contains(&self.client.node))
                    .unwrap_or(false)
            }
        }
    }

    async fn lustre_handle(&self) -> Result<Rc<LustreFile>, BbError> {
        let cached = self.lustre_file.borrow().as_ref().map(Rc::clone);
        if let Some(f) = cached {
            return Ok(f);
        }
        let lpath = self.meta.borrow().lustre_path.clone();
        let f = Rc::new(self.client.lustre.open(&lpath).await?);
        *self.lustre_file.borrow_mut() = Some(Rc::clone(&f));
        Ok(f)
    }

    /// Start a read-through cache fill if the fill window has room.
    fn maybe_fill(&self, file_id: u64, seq: u64, data: &Bytes) {
        if !self.config().populate_on_read {
            return;
        }
        match self.client.fill_gate.try_acquire() {
            Some(permit) => {
                self.client.dep.read_counters().fills_started.inc();
                let kv = Rc::clone(&self.client.kv);
                let key = chunk_key(file_id, seq);
                let crc = integrity::chunk_crc(&key, data);
                let fill = data.clone();
                self.client.dep.stack.sim().spawn(async move {
                    let _permit = permit;
                    let _ = kv.set(&key, fill, crc, 0).await;
                });
            }
            None => self.client.dep.read_counters().fill_drops.inc(),
        }
    }

    /// Verify a Lustre-tier chunk against the file's CRC manifest. Files
    /// closed before the manifest existed (or still being written) have
    /// no entry and pass unverified — same behaviour as the seed.
    fn verify_lustre(&self, file_id: u64, seq: u64, data: &Bytes) -> Result<(), BbError> {
        let crc = self.meta.borrow().chunk_crcs.get(seq as usize).copied();
        if let Some(crc) = crc {
            if integrity::chunk_crc(&chunk_key(file_id, seq), data) != crc {
                self.client.dep.integrity_counters().checksum_fail.inc();
                return Err(BbError::DataUnavailable {
                    path: self.path.clone(),
                    seq,
                });
            }
        }
        Ok(())
    }

    /// Fetch one whole chunk via the serial tiered read path (the
    /// `read_window = 1` behaviour, and the fallback for chunks the
    /// pipelined planner did not cover).
    async fn fetch_chunk(&self, seq: u64) -> Result<Bytes, BbError> {
        let (file_id, chunk_size, size) = {
            let m = self.meta.borrow();
            (m.file_id, m.chunk_size, m.size)
        };
        let chunk_len = chunk_size.min(size - seq * chunk_size);
        let sim = self.client.dep.stack.sim().clone();
        let _sp = sim.span("bb.fetch_chunk", "bb", self.client.node.0, seq);
        if let Some(t) = self.client.dep.manager.access_tracker() {
            t.record(file_id, seq, self.client.node.0);
        }
        let read_cpu = simkit::dur::transfer(chunk_len, self.config().client_read_rate);
        // tier 0 (scheme C): node-local replica
        if self.has_local_replica(seq * chunk_size) {
            if let Some(r) = &self.hdfs_reader {
                if let Ok(b) = r.read_at(seq * chunk_size, chunk_len).await {
                    sim.sleep(read_cpu).await;
                    self.client.dep.read_counters().tier_local.inc();
                    return Ok(b);
                }
            }
        }
        // tier 1: the buffer (RDMA GET from server DRAM), checksum-
        // verified — a corrupt copy fails over to the next replica (and
        // is repaired in place), never reaches the caller
        if let Ok(Some(v)) = integrity::get_verified(
            &self.client.kv,
            self.client.dep.integrity_counters(),
            &chunk_key(file_id, seq),
        )
        .await
        {
            sim.sleep(read_cpu).await;
            self.client.dep.read_counters().tier_buffer.inc();
            return Ok(v.data);
        }
        // tier 2: Lustre — only sound once the file is flushed
        let mut state = self.meta.borrow().state;
        if state != FileState::Flushed {
            // refresh: the flusher may have finished since open
            if let Ok(m) = self.client.fetch_meta(&self.path).await {
                state = m.state;
                *self.meta.borrow_mut() = m;
            }
        }
        if state != FileState::Flushed {
            return Err(BbError::DataUnavailable {
                path: self.path.clone(),
                seq,
            });
        }
        let lf = self.lustre_handle().await?;
        let data = lf.read_at(seq * chunk_size, chunk_len).await?;
        self.verify_lustre(file_id, seq, &data)?;
        self.maybe_fill(file_id, seq, &data);
        self.client.dep.read_counters().tier_lustre.inc();
        Ok(data)
    }

    /// Read `len` bytes at `offset`.
    async fn read_at(self: &Rc<Self>, offset: u64, len: u64) -> Result<Bytes, BbError> {
        let size = self.meta.borrow().size;
        assert!(offset + len <= size, "read past EOF");
        if len == 0 {
            return Ok(Bytes::new());
        }
        if self.config().read_window <= 1 {
            self.read_at_sequential(offset, len).await
        } else {
            self.read_at_pipelined(offset, len).await
        }
    }

    /// The serial chunk-at-a-time loop (seed behaviour, bit-for-bit).
    async fn read_at_sequential(&self, offset: u64, len: u64) -> Result<Bytes, BbError> {
        let chunk_size = self.meta.borrow().chunk_size;
        let mut out = BytesMut::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let seq = pos / chunk_size;
            let within = pos % chunk_size;
            let chunk = self.fetch_chunk(seq).await?;
            let take = ((chunk.len() as u64) - within).min(end - pos);
            out.extend_from_slice(&chunk[within as usize..(within + take) as usize]);
            pos += take;
        }
        Ok(out.freeze())
    }

    /// The pipelined path: plan group fetches over the requested range
    /// (plus readahead), then consume in order, overlapping one group's
    /// client-side CPU with the next group's wire time.
    async fn read_at_pipelined(self: &Rc<Self>, offset: u64, len: u64) -> Result<Bytes, BbError> {
        let (chunk_size, size) = {
            let m = self.meta.borrow();
            (m.chunk_size, m.size)
        };
        let window = self.config().read_window;
        let first = offset / chunk_size;
        let last = (offset + len - 1) / chunk_size;
        let max_seq = (size - 1) / chunk_size;
        let horizon = if self.config().readahead {
            (last + window as u64).min(max_seq)
        } else {
            last
        };
        // bound the ready map under random access: keep only the planned
        // range once it outgrows a few windows of chunks
        {
            let mut ready = self.ready.borrow_mut();
            if ready.len() > 4 * window {
                ready.retain(|s, _| *s >= first && *s <= horizon);
            }
        }
        self.spawn_missing(first, horizon);
        let mut out = BytesMut::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let seq = pos / chunk_size;
            let within = pos % chunk_size;
            let chunk = self.take_chunk(seq).await?;
            let take = ((chunk.len() as u64) - within).min(end - pos);
            out.extend_from_slice(&chunk[within as usize..(within + take) as usize]);
            pos += take;
            if within + take < chunk.len() as u64 {
                // the request ends mid-chunk: keep the rest for the next
                // (sequential) read instead of refetching
                self.ready.borrow_mut().insert(seq, Ok(chunk));
            }
        }
        Ok(out.freeze())
    }

    /// Launch group fetches for every seq in `[first, horizon]` that is
    /// neither ready nor in flight. Groups are at most `read_window`
    /// chunks and acquire their permits atomically (all-or-nothing), so
    /// two groups can never deadlock holding partial windows.
    fn spawn_missing(self: &Rc<Self>, first: u64, horizon: u64) {
        let window = self.config().read_window;
        let missing: Vec<u64> = {
            let ready = self.ready.borrow();
            let inflight = self.inflight.borrow();
            (first..=horizon)
                .filter(|s| !ready.contains_key(s) && !inflight.contains_key(s))
                .collect()
        };
        let sim = self.client.dep.stack.sim().clone();
        for group in missing.chunks(window) {
            let seqs = group.to_vec();
            let slot: InflightSlot = Rc::new(RefCell::new(None));
            {
                let mut inflight = self.inflight.borrow_mut();
                for &s in &seqs {
                    inflight.insert(s, Rc::clone(&slot));
                }
            }
            let handle = sim.spawn(Rc::clone(self).run_group(seqs));
            // single-threaded executor: the task cannot have run yet, so
            // the slot is filled before any consumer can look at it
            *slot.borrow_mut() = Some(handle);
        }
    }

    /// One group fetch: hold `len` window permits for the wire phase,
    /// release them, then charge the client-side CPU while the next
    /// group's wire phase proceeds, and finally publish the chunks.
    async fn run_group(self: Rc<Self>, seqs: Vec<u64>) {
        let sim = self.client.dep.stack.sim().clone();
        let _sp = sim.span("bb.run_group", "bb", self.client.node.0, seqs[0]);
        let op = sim.op_begin("bb", "read_group", 0);
        let permit = self.fetch_gate.acquire_many(seqs.len()).await;
        sim.op_stamp(op, "permit_wait");
        let (results, cpu) = self.fetch_group(&seqs, op).await;
        drop(permit);
        if cpu > Duration::ZERO {
            sim.sleep(cpu).await;
        }
        sim.op_stamp(op, "cpu");
        if let Some(done) = sim.op_finish(op) {
            if let Some((stage, _)) = done.dominant_stage() {
                sim.optrace()
                    .note_critical(format!("bb.critpath.read_group.{stage}"));
            }
        }
        let mut ready = self.ready.borrow_mut();
        let mut inflight = self.inflight.borrow_mut();
        for (s, r) in results {
            ready.insert(s, r);
            inflight.remove(&s);
        }
    }

    /// Fetch a group of chunks through the tiers: node-local replicas in
    /// parallel, one batched GET round trip per KV server for the rest,
    /// and contiguous buffer-miss runs coalesced into single Lustre
    /// reads. Returns per-seq results plus the client CPU to charge for
    /// the buffer hits (their payloads land together when the batched
    /// GETs join, so the per-chunk costs overlap — the max is charged).
    async fn fetch_group(
        self: &Rc<Self>,
        seqs: &[u64],
        op: Option<simkit::OpId>,
    ) -> (Vec<(u64, Result<Bytes, BbError>)>, Duration) {
        let (file_id, chunk_size, size) = {
            let m = self.meta.borrow();
            (m.file_id, m.chunk_size, m.size)
        };
        let rate = self.config().client_read_rate;
        let sim = self.client.dep.stack.sim().clone();
        if let Some(t) = self.client.dep.manager.access_tracker() {
            for &s in seqs {
                t.record(file_id, s, self.client.node.0);
            }
        }
        let clen = |seq: u64| chunk_size.min(size - seq * chunk_size);
        let mut out: BTreeMap<u64, Result<Bytes, BbError>> = BTreeMap::new();
        let mut cpu = Duration::ZERO;

        // tier 0: node-local replica reads, concurrent, each charging its
        // own client CPU inside the task
        let mut local: Vec<(u64, JoinHandle<Option<Bytes>>)> = Vec::new();
        let mut rest: Vec<u64> = Vec::new();
        for &s in seqs {
            if self.has_local_replica(s * chunk_size) {
                let core = Rc::clone(self);
                let len = clen(s);
                local.push((
                    s,
                    sim.spawn(async move {
                        let r = core.hdfs_reader.as_ref()?;
                        let b = r.read_at(s * chunk_size, len).await.ok()?;
                        let cpu = simkit::dur::transfer(len, rate);
                        core.client.dep.stack.sim().sleep(cpu).await;
                        Some(b)
                    }),
                ));
            } else {
                rest.push(s);
            }
        }

        // tier 1: batched buffer GETs (one round trip per owning server)
        let mut misses: Vec<u64> = Vec::new();
        if !rest.is_empty() {
            let keys: Vec<Vec<u8>> = rest.iter().map(|&s| chunk_key(file_id, s)).collect();
            let servers: BTreeSet<usize> = keys
                .iter()
                .filter_map(|k| self.client.kv.route(k).ok())
                .collect();
            let rc = self.client.dep.read_counters();
            rc.multi_gets.add(servers.len() as u64);
            rc.multi_get_keys.add(keys.len() as u64);
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let mut corrupt: Vec<u64> = Vec::new();
            match self.client.kv.multi_get(&refs).await {
                Ok(vals) => {
                    for ((&s, key), v) in rest.iter().zip(&keys).zip(vals) {
                        match v {
                            Some(val) if integrity::chunk_crc(key, &val.data) == val.flags => {
                                cpu = cpu.max(simkit::dur::transfer(clen(s), rate));
                                self.client.dep.read_counters().tier_buffer.inc();
                                out.insert(s, Ok(val.data));
                            }
                            Some(_) => {
                                self.client.dep.integrity_counters().checksum_fail.inc();
                                corrupt.push(s);
                            }
                            None => misses.push(s),
                        }
                    }
                }
                // a failed batch (e.g. a server down) degrades every key
                // to the Lustre tier, matching the serial path's fallback
                Err(_) => misses.extend(rest.iter().copied()),
            }
            // a corrupt batched hit retries through the verified per-key
            // path (replica failover + in-place repair) before degrading
            // to the Lustre tier
            for s in corrupt {
                match integrity::get_verified(
                    &self.client.kv,
                    self.client.dep.integrity_counters(),
                    &chunk_key(file_id, s),
                )
                .await
                {
                    Ok(Some(v)) => {
                        cpu = cpu.max(simkit::dur::transfer(clen(s), rate));
                        self.client.dep.read_counters().tier_buffer.inc();
                        out.insert(s, Ok(v.data));
                    }
                    _ => misses.push(s),
                }
            }
            misses.sort_unstable();
            sim.op_stamp(op, "kv_fetch");
        }

        // join the tier-0 reads; a failed local read falls back to the
        // serial tiered path for that chunk
        let had_local = !local.is_empty();
        for (s, h) in local {
            match h.await {
                Some(b) => {
                    self.client.dep.read_counters().tier_local.inc();
                    out.insert(s, Ok(b));
                }
                None => {
                    let r = self.fetch_chunk(s).await;
                    out.insert(s, r);
                }
            }
        }
        if had_local {
            sim.op_stamp(op, "local_join");
        }

        // tier 2: Lustre, only sound once the file is flushed
        let had_misses = !misses.is_empty();
        if !misses.is_empty() {
            let mut state = self.meta.borrow().state;
            if state != FileState::Flushed {
                if let Ok(m) = self.client.fetch_meta(&self.path).await {
                    state = m.state;
                    *self.meta.borrow_mut() = m;
                }
            }
            if state != FileState::Flushed {
                for s in misses {
                    out.insert(
                        s,
                        Err(BbError::DataUnavailable {
                            path: self.path.clone(),
                            seq: s,
                        }),
                    );
                }
            } else {
                match self.lustre_handle().await {
                    Err(e) => {
                        for s in misses {
                            out.insert(s, Err(e.clone()));
                        }
                    }
                    Ok(lf) => {
                        // coalesce contiguous miss runs into single
                        // stripe-spanning reads, fetched concurrently
                        type LustreRun = (u64, u64, JoinHandle<Result<Bytes, LustreError>>);
                        let mut runs: Vec<LustreRun> = Vec::new();
                        for (s0, s1) in coalesce_runs(&misses) {
                            let lf = Rc::clone(&lf);
                            let off = s0 * chunk_size;
                            let run_len = (s1 * chunk_size + clen(s1)) - off;
                            let h = sim.spawn(async move { lf.read_at(off, run_len).await });
                            runs.push((s0, s1, h));
                        }
                        for (s0, s1, h) in runs {
                            match h.await {
                                Ok(data) => {
                                    for s in s0..=s1 {
                                        let rel = ((s - s0) * chunk_size) as usize;
                                        let b = data.slice(rel..rel + clen(s) as usize);
                                        if let Err(e) = self.verify_lustre(file_id, s, &b) {
                                            out.insert(s, Err(e));
                                            continue;
                                        }
                                        self.maybe_fill(file_id, s, &b);
                                        self.client.dep.read_counters().tier_lustre.inc();
                                        out.insert(s, Ok(b));
                                    }
                                }
                                Err(e) => {
                                    let e: BbError = e.into();
                                    for s in s0..=s1 {
                                        out.insert(s, Err(e.clone()));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if had_misses {
            sim.op_stamp(op, "lustre_fetch");
        }
        (out.into_iter().collect(), cpu)
    }

    /// Hand the consumer chunk `seq`: from `ready` if fetched, by waiting
    /// on its group if in flight, or via the serial path if the planner
    /// never covered it (random access outside the planned range).
    async fn take_chunk(self: &Rc<Self>, seq: u64) -> Result<Bytes, BbError> {
        let hit = self.ready.borrow_mut().remove(&seq);
        if let Some(res) = hit {
            return match res {
                Ok(b) => Ok(b),
                // a group-fetch error may be stale (e.g. the flusher
                // finished since): retry once through the serial path,
                // which surfaces the authoritative error
                Err(_) => self.fetch_chunk(seq).await,
            };
        }
        let slot = self.inflight.borrow().get(&seq).map(Rc::clone);
        if let Some(slot) = slot {
            self.client.dep.read_counters().readahead_stalls.inc();
            let handle = slot.borrow_mut().take();
            if let Some(h) = handle {
                h.await;
            }
            // else: another consumer is already driving this group; with
            // a single sequential consumer this cannot happen, fall
            // through to the direct fetch
            let res = self.ready.borrow_mut().remove(&seq);
            if let Some(Ok(b)) = res {
                return Ok(b);
            }
        }
        self.fetch_chunk(seq).await
    }
}

/// Collapse an ascending seq list into inclusive `(start, end)` runs.
fn coalesce_runs(seqs: &[u64]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &s in seqs {
        match runs.last_mut() {
            Some((_, e)) if *e + 1 == s => *e = s,
            _ => runs.push((s, s)),
        }
    }
    runs
}
