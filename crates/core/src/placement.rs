//! Topology-aware chunk placement: policy knob, per-chunk reader
//! telemetry, and the latency cost model the background optimizer in
//! [`crate::BbManager`] minimizes.
//!
//! Everything here is defaults-off: with [`crate::BbConfig::bb_place_policy`]
//! at [`PlacementPolicy::Hash`] and [`crate::BbConfig::bb_place_interval`]
//! at zero, no tracker exists, no `bb.place.*` metric is registered, and
//! chunk routing is the seed consistent-hash ring bit-for-bit.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use netsim::{Fabric, NodeId};
use rkv::Membership;

/// How replica targets are chosen for buffered chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Pure consistent-hash ring placement — the seed behaviour and the
    /// default. No override is ever installed.
    Hash,
    /// Locality-preferring placement: a new chunk's replicas are the
    /// topologically nearest ring servers to the writer (ring order
    /// breaks ties), installed as a routing override in the shared
    /// membership view. The background optimizer (when
    /// [`crate::BbConfig::bb_place_interval`] > 0) then migrates chunks
    /// toward their observed readers.
    Locality,
}

impl PlacementPolicy {
    /// Short label used in experiment tables and knob docs.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::Hash => "hash",
            PlacementPolicy::Locality => "locality",
        }
    }
}

/// Per-chunk reader telemetry: how many chunk fetches each compute node
/// issued against each `(file_id, seq)`. Recorded by the tiered read
/// path, consumed by the placement optimizer's cost model. BTreeMaps
/// keep iteration deterministic.
pub(crate) struct AccessTracker {
    counts: RefCell<BTreeMap<(u64, u64), BTreeMap<u32, u64>>>,
}

impl AccessTracker {
    pub(crate) fn new() -> Rc<AccessTracker> {
        Rc::new(AccessTracker {
            counts: RefCell::new(BTreeMap::new()),
        })
    }

    /// One chunk fetch of `(file_id, seq)` issued from `node`.
    pub(crate) fn record(&self, file_id: u64, seq: u64, node: u32) {
        *self
            .counts
            .borrow_mut()
            .entry((file_id, seq))
            .or_default()
            .entry(node)
            .or_insert(0) += 1;
    }

    /// The chunk's per-reader counts, `(node, fetches)`.
    pub(crate) fn readers_of(&self, file_id: u64, seq: u64) -> Vec<(u32, u64)> {
        self.counts
            .borrow()
            .get(&(file_id, seq))
            .map(|m| m.iter().map(|(&n, &c)| (n, c)).collect())
            .unwrap_or_default()
    }

    /// Chunks with at least one recorded fetch.
    pub(crate) fn tracked(&self) -> Vec<(u64, u64)> {
        self.counts.borrow().keys().copied().collect()
    }

    /// Drop a deleted file's telemetry.
    pub(crate) fn forget_file(&self, file_id: u64) {
        self.counts.borrow_mut().retain(|(f, _), _| *f != file_id);
    }
}

/// Placement-engine counters (`bb.place.*`) — registered only when
/// placement is enabled, so the names stay out of default snapshots.
pub(crate) struct PlaceCounters {
    /// Chunks the optimizer decided to move (cost strictly improves).
    pub(crate) decisions: simkit::telemetry::Counter,
    /// Placement migrations completed (copy verified, override installed).
    pub(crate) migrations: simkit::telemetry::Counter,
    /// Payload bytes copied by placement migrations.
    pub(crate) bytes: simkit::telemetry::Counter,
    /// Estimated read cost (reader-weighted topology nanoseconds) of the
    /// layouts being replaced, summed over decisions.
    pub(crate) cost_before: simkit::telemetry::Counter,
    /// Estimated read cost of the chosen layouts, summed over decisions.
    pub(crate) cost_after: simkit::telemetry::Counter,
}

impl PlaceCounters {
    fn register(m: &simkit::telemetry::Registry) -> PlaceCounters {
        PlaceCounters {
            decisions: m.counter("bb.place.decisions"),
            migrations: m.counter("bb.place.migrations"),
            bytes: m.counter("bb.place.bytes"),
            cost_before: m.counter("bb.place.cost_before"),
            cost_after: m.counter("bb.place.cost_after"),
        }
    }
}

/// One queued placement move: a chunk, the replica set to establish, and
/// whether a routing override should be installed once the data is in
/// place (`false` for moves back to the chunk's plain hash owners).
pub(crate) type PlaceMove = ((u64, u64), Vec<usize>, bool);

/// Live state of the placement engine, owned by the manager. Exists only
/// when placement is enabled ([`crate::BbConfig::placement_enabled`]).
pub(crate) struct PlaceState {
    pub(crate) tracker: Rc<AccessTracker>,
    pub(crate) counters: PlaceCounters,
    /// Moves awaiting migration bandwidth, drained per tick under
    /// [`crate::BbConfig::bb_migrate_budget`].
    pub(crate) pending: RefCell<VecDeque<PlaceMove>>,
    /// Chunks currently queued (or being moved), to keep one decision per
    /// chunk in flight.
    pub(crate) queued: RefCell<BTreeSet<(u64, u64)>>,
    pub(crate) stop: Cell<bool>,
}

impl PlaceState {
    pub(crate) fn new(m: &simkit::telemetry::Registry) -> PlaceState {
        PlaceState {
            tracker: AccessTracker::new(),
            counters: PlaceCounters::register(m),
            pending: RefCell::new(VecDeque::new()),
            queued: RefCell::new(BTreeSet::new()),
            stop: Cell::new(false),
        }
    }
}

/// Nanoseconds of extra topology latency a reader on `from` pays to the
/// nearest node of `replicas`. The transfer model charges
/// [`Fabric::topo_latency`] each way, but the relative ordering is all
/// the optimizer needs, so one-way cost is used throughout.
fn nearest_ns(fabric: &Fabric, from: NodeId, replicas: &[NodeId]) -> u64 {
    replicas
        .iter()
        .map(|&n| fabric.topo_latency(from, n).as_nanos() as u64)
        .min()
        .unwrap_or(0)
}

/// The optimizer's objective for one chunk: each reader's fetch count
/// weighted by the topology distance to its nearest replica, summed.
pub(crate) fn read_cost(fabric: &Fabric, readers: &[(u32, u64)], replicas: &[NodeId]) -> u64 {
    readers
        .iter()
        .map(|&(node, count)| count.saturating_mul(nearest_ns(fabric, NodeId(node), replicas)))
        .fold(0u64, u64::saturating_add)
}

/// Active ring servers in the key's ring preference order — the
/// deterministic candidate list every placement choice ranks over.
pub(crate) fn ring_order(view: &Membership, key: &[u8]) -> Vec<usize> {
    let ring = view.ring_snapshot();
    if ring.is_empty() {
        return Vec::new();
    }
    ring.route_n(key, view.active_len())
        .into_iter()
        .copied()
        .collect()
}

/// Rank `candidates` (roster indices) by a per-server cost, stable so the
/// incoming ring order breaks ties, and keep the first `r`.
pub(crate) fn rank_by_cost(
    candidates: &[usize],
    r: usize,
    mut cost: impl FnMut(usize) -> u64,
) -> Vec<usize> {
    let mut ranked: Vec<usize> = candidates.to_vec();
    ranked.sort_by_key(|&idx| cost(idx));
    ranked.truncate(r.max(1).min(candidates.len().max(1)));
    ranked
}

/// Write-time locality selection: the `r` active servers topologically
/// nearest to the writer, ring order breaking ties. `None` when the
/// choice coincides with the plain hash owners (no override needed) or
/// the ring is empty.
pub(crate) fn locality_targets(
    fabric: &Fabric,
    view: &Membership,
    from: NodeId,
    key: &[u8],
    r: usize,
) -> Option<Vec<usize>> {
    let order = ring_order(view, key);
    if order.is_empty() {
        return None;
    }
    let ranked = rank_by_cost(&order, r, |idx| {
        fabric
            .topo_latency(from, view.server(idx).node())
            .as_nanos() as u64
    });
    let hash: Vec<usize> = order.iter().take(ranked.len()).copied().collect();
    (ranked != hash).then_some(ranked)
}
