//! # bb-core — the RDMA key-value-store burst buffer
//!
//! The paper's contribution: Big-Data (HDFS-style) I/O on an HPC cluster is
//! routed through a burst buffer built from RDMA-Memcached servers, with
//! Lustre as the persistent backing store. Three integration schemes trade
//! I/O performance, data locality, and fault tolerance (DESIGN.md §3):
//!
//! * [`Scheme::AsyncLustre`] — writes land in the buffer over RDMA and are
//!   acknowledged immediately; a persistence manager flushes to Lustre in
//!   the background. Fastest writes, zero local storage, small fault
//!   window (unflushed data lives only in buffer memory).
//! * [`Scheme::SyncLustre`] — write-through: a chunk is acknowledged only
//!   after both the buffer PUT and the Lustre write complete. No fault
//!   window; writes pay max(buffer, Lustre).
//! * [`Scheme::HybridLocality`] — one extra replica goes to node-local
//!   storage (a RAM-disk-backed single-replica HDFS overlay) so map tasks
//!   keep data locality; buffer + async Lustre flush as in AsyncLustre.
//!
//! Reads always prefer the buffer (RDMA GET from server DRAM), then the
//! node-local replica (scheme C), then Lustre.
//!
//! [`fs::AnyFs`] wraps plain HDFS, plain Lustre, and the burst buffer
//! behind one interface so the MapReduce engine and the benchmark
//! workloads drive all five systems identically.

#![warn(missing_docs)]

pub mod client;
pub mod fs;
pub mod integrity;
pub mod manager;
pub mod placement;

use std::rc::Rc;

use netsim::{Fabric, NodeId};
use rdmasim::RdmaStack;
use rkv::server::KvServerConfig;
use rkv::slab::SlabConfig;
use rkv::KvServer;

use lustre::LustreCluster;

use hdfs::{HdfsCluster, HdfsConfig};
use storesim::DiskKind;

pub use client::{BbClient, BbError, BbReader, BbWriter, ReadStats, WriteOptions};
pub use manager::{BbManager, FileState};
pub use placement::PlacementPolicy;

/// Which of the paper's three HDFS⇄Lustre integration schemes is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Buffer write + asynchronous Lustre flush (I/O-oriented).
    AsyncLustre,
    /// Buffer write + synchronous Lustre write-through (fault-tolerance-
    /// oriented).
    SyncLustre,
    /// Buffer write + node-local replica + asynchronous Lustre flush
    /// (data-locality-oriented).
    HybridLocality,
}

impl Scheme {
    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::AsyncLustre => "BB-Async",
            Scheme::SyncLustre => "BB-Sync",
            Scheme::HybridLocality => "BB-Hybrid",
        }
    }

    /// All three schemes, for sweeps.
    pub fn all() -> [Scheme; 3] {
        [
            Scheme::AsyncLustre,
            Scheme::SyncLustre,
            Scheme::HybridLocality,
        ]
    }
}

/// When a buffered write is acknowledged to the client, relative to the
/// configured replication factor `r` ([`BbConfig::kv_replication`]).
///
/// The remaining replicas complete asynchronously under a bounded
/// ack-ahead window ([`BbConfig::bb_ack_ahead`]); the loss window each
/// mode leaves open under a crash is an asserted contract in the fault
/// matrix (`bench/tests/faults.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AckMode {
    /// Ack after one replica (the primary) is durable in the buffer.
    /// Loss window under a primary crash: up to the ack-ahead window.
    LocalOnly,
    /// Ack after two replicas are durable (one when `r = 1`). Survives
    /// any single crash with zero acked loss when `r >= 2`.
    LocalPlusOne,
    /// Ack only after all `r` replicas are durable — the seed behaviour
    /// and the default. Zero acked loss up to `r - 1` crashes.
    FullR,
}

impl AckMode {
    /// Replicas that must be durable before the ack, given `r` configured.
    pub fn quorum(&self, r: usize) -> usize {
        let r = r.max(1);
        match self {
            AckMode::LocalOnly => 1,
            AckMode::LocalPlusOne => r.min(2),
            AckMode::FullR => r,
        }
    }

    /// Short label used in experiment tables and knob docs.
    pub fn label(&self) -> &'static str {
        match self {
            AckMode::LocalOnly => "local_only",
            AckMode::LocalPlusOne => "local_plus_one",
            AckMode::FullR => "full_r",
        }
    }

    /// All three modes, for sweeps.
    pub fn all() -> [AckMode; 3] {
        [AckMode::LocalOnly, AckMode::LocalPlusOne, AckMode::FullR]
    }
}

/// Burst-buffer deployment configuration.
#[derive(Debug, Clone, Copy)]
pub struct BbConfig {
    /// Active integration scheme.
    pub scheme: Scheme,
    /// Chunk size for the block→KV key schema (default 512 KiB, inside
    /// memcached's 1 MiB item limit).
    pub chunk_size: u64,
    /// Number of dedicated KV (burst buffer) server nodes.
    pub kv_servers: usize,
    /// Memory budget per KV server.
    pub kv_mem_per_server: u64,
    /// Modeled cores per KV server. `1` (default) reproduces the
    /// single-context server exactly; ≥ 2 activates the shard-per-core
    /// engine (one store stripe per core, requests routed by key hash).
    pub kv_cores: usize,
    /// Max completions a KV server drains per poll of its completion
    /// ring. `1` (default) keeps the single-context model.
    pub kv_cq_batch: usize,
    /// Idle window before a KV server's slab classes become eligible for
    /// page reclamation under pressure. `Duration::ZERO` (default)
    /// disables reclamation (classic memcached calcification).
    pub kv_reclaim_idle: std::time::Duration,
    /// Hot-key replica fan-out on each KV server (engine model only):
    /// reads of keys the per-shard frequency sketch flags hot spread
    /// across this many extra cores beyond the home core, served from a
    /// write-invalidated server-side copy. `0` (default) disables
    /// detection and fan-out (seed behaviour).
    pub kv_hot_replicas: usize,
    /// Per-tenant resident-byte floor on each KV server, as a fraction
    /// of each shard's memory budget: other tenants' eviction pressure
    /// cannot push a tenant below its floor. `0.0` (default) disables
    /// tenant budgeting.
    pub kv_tenant_floor: f64,
    /// Per-tenant token-bucket admission rate on each KV server
    /// (ops/sec); requests over budget are rejected with `Throttled`
    /// before touching a core. `0.0` (default) disables admission;
    /// tenant 0 is always exempt.
    pub kv_tenant_rate: f64,
    /// Token-bucket depth (burst allowance, ops) when
    /// [`BbConfig::kv_tenant_rate`] is active.
    pub kv_tenant_burst: f64,
    /// Concurrent file flush streams in the persistence manager.
    pub flusher_threads: usize,
    /// Writers stall when unflushed buffered bytes exceed this fraction of
    /// the aggregate KV memory (protects unflushed data from LRU pressure).
    pub flush_watermark: f64,
    /// Chunks a writer pushes concurrently.
    pub write_window: usize,
    /// Chunks a reader fetches concurrently (pipelined tiered read path).
    /// `1` reproduces the serial chunk-at-a-time behaviour exactly.
    pub read_window: usize,
    /// Prefetch up to `read_window` chunks past the current request on
    /// sequential reads (readahead); the bytes returned are identical
    /// either way.
    pub readahead: bool,
    /// RAM-disk capacity per node for the locality replica (scheme C).
    pub local_ramdisk: u64,
    /// Populate the buffer on Lustre-fallback reads (read-through cache).
    pub populate_on_read: bool,
    /// Client-side serialization rate on the write path (bytes/s): the
    /// Hadoop-client → KV-client boundary (framing, copies into registered
    /// buffers). Calibrated so per-task write throughput lands in the
    /// regime the paper reports (DESIGN.md §5).
    pub client_write_rate: f64,
    /// Client-side rate on the read path (bytes/s): one-sided RDMA lands
    /// payloads directly in client buffers, so reads are much cheaper than
    /// writes per byte.
    pub client_read_rate: f64,
    /// Transport the KV layer runs on (native verbs by default; the
    /// `repro_ab1` ablation swaps in IPoIB/Ethernet to isolate the RDMA
    /// contribution).
    pub transport: netsim::TransportProfile,
    /// Use the hybrid one-sided protocol (RDMA READ/WRITE for payloads).
    /// `false` forces every payload inline through SEND/RECV (ablation).
    pub one_sided: bool,
    /// KV replicas per chunk (`r`): chunks are written to the first `r`
    /// distinct servers on the ring and reads fail over between them.
    /// `1` reproduces the paper's single-copy buffer.
    pub kv_replication: usize,
    /// Per-attempt deadline on every KV operation.
    pub kv_op_timeout: std::time::Duration,
    /// Bounded retries per KV replica on transport errors/timeouts.
    pub kv_retries: u32,
    /// First retry backoff (doubles per retry, seeded jitter).
    pub kv_backoff: std::time::Duration,
    /// Background scrubber tick period (virtual time). Each tick verifies
    /// checksums on up to [`BbConfig::scrub_batch`] resident chunks across
    /// all replicas and repairs divergent copies. `Duration::ZERO`
    /// disables the scrubber.
    pub scrub_interval: std::time::Duration,
    /// Chunks verified per scrubber tick.
    pub scrub_batch: usize,
    /// Background rebalancer tick period (virtual time). Each tick reacts
    /// to membership-epoch bumps by queueing resident chunks whose ring
    /// owners changed, then migrates up to [`BbConfig::rebalance_batch`]
    /// of them (copy to the new owners, verify CRC by read-back, delete
    /// from the old). `Duration::ZERO` disables the rebalancer (a
    /// membership change then relies on the epoch-fallback read path
    /// alone).
    pub rebalance_interval: std::time::Duration,
    /// Chunks migrated per rebalancer tick.
    pub rebalance_batch: usize,
    /// Overload high watermark: when unflushed buffered bytes exceed this
    /// fraction of aggregate KV memory, write acks carry a pressure signal
    /// and writers degrade to write-through-to-Lustre (per scheme, no
    /// errors) instead of queueing behind the flusher.
    pub bb_high_watermark: f64,
    /// Overload low watermark: pressure clears (writers resume buffering)
    /// once unflushed bytes drain below this fraction — hysteresis so the
    /// write path does not flap around a single threshold.
    pub bb_low_watermark: f64,
    /// Enable per-operation request tracing ([`simkit::optrace`]): every
    /// KV op and burst-buffer read group / write chunk records a
    /// virtual-time stamp vector, published as exact-percentile latency
    /// decompositions (`rkv.lat.*`, `bb.lat.*`). `false` (default) keeps
    /// tracing fully disabled — outputs are byte-identical either way.
    pub trace_ops: bool,
    /// Ring capacity of the per-component crash flight recorder
    /// ([`simkit::flight`]). `0` (default) disables it; when enabled,
    /// fault applications, pressure transitions, lost files, and
    /// unrepairable scrub verdicts land in bounded rings that assertion
    /// failures dump deterministically to JSON.
    pub flight_recorder_len: usize,
    /// Default durability ack mode for buffered writes ([`AckMode`]).
    /// [`AckMode::FullR`] (default) reproduces the seed exactly: the ack
    /// waits for all `r` replicas. Relaxed modes ack at the mode's quorum
    /// and complete the remaining replicas asynchronously. Overridable
    /// per file via [`client::WriteOptions`].
    pub bb_ack_mode: AckMode,
    /// Bound on chunks per writer whose async replica tails are still
    /// outstanding under a relaxed ack mode. When the window is full the
    /// next write waits for a tail to finish before acking
    /// (backpressure), so the acked-but-not-fully-replicated loss window
    /// is never wider than this many chunks. Must be > 0.
    pub bb_ack_ahead: usize,
    /// Traffic-aware admission: once a file writes this many bytes
    /// inside one classifier window, the manager labels it
    /// long-sequential and routes its remaining chunks write-through to
    /// Lustre, keeping BB capacity for bursts. `0` (default) disables
    /// classification entirely (always-admit, seed behaviour).
    pub bb_admit_stream_bytes: u64,
    /// Classifier window: an idle gap longer than this between writes of
    /// the same file resets its accumulated byte count, so spaced bursts
    /// never classify as streams no matter their total volume.
    pub bb_admit_window: std::time::Duration,
    /// Replica-target policy for buffered chunks ([`PlacementPolicy`]).
    /// [`PlacementPolicy::Hash`] (default) is the seed consistent-hash
    /// ring bit-for-bit; [`PlacementPolicy::Locality`] places new chunks
    /// on the topologically nearest ring servers to the writer.
    pub bb_place_policy: PlacementPolicy,
    /// Background placement-optimizer tick period (virtual time). Each
    /// tick re-costs resident chunks against their observed readers
    /// (topology cost model, [`netsim::Fabric::topo_latency`]) and
    /// migrates improvements toward the readers — copy, CRC read-back,
    /// override install, then delete-from-old, reusing the rebalancer's
    /// verified-move machinery. `Duration::ZERO` (default) disables the
    /// optimizer.
    pub bb_place_interval: std::time::Duration,
    /// Payload bytes the placement optimizer may copy per tick (its
    /// migration-bandwidth budget; at least one queued move always
    /// proceeds). `0` removes the bound.
    pub bb_migrate_budget: u64,
}

impl BbConfig {
    /// Whether any part of the placement engine is on: a non-hash policy
    /// or a running optimizer. Gates the access tracker and the lazy
    /// `bb.place.*` counters so defaults stay byte-identical.
    pub fn placement_enabled(&self) -> bool {
        self.bb_place_policy != PlacementPolicy::Hash
            || self.bb_place_interval > std::time::Duration::ZERO
    }
}

impl Default for BbConfig {
    fn default() -> Self {
        BbConfig {
            scheme: Scheme::AsyncLustre,
            chunk_size: 512 << 10,
            kv_servers: 4,
            kv_mem_per_server: 512 << 20,
            kv_cores: 1,
            kv_cq_batch: 1,
            kv_reclaim_idle: std::time::Duration::ZERO,
            kv_hot_replicas: 0,
            kv_tenant_floor: 0.0,
            kv_tenant_rate: 0.0,
            kv_tenant_burst: 64.0,
            flusher_threads: 4,
            flush_watermark: 0.6,
            write_window: 4,
            read_window: 8,
            readahead: true,
            local_ramdisk: 8 << 30,
            populate_on_read: false,
            client_write_rate: 55e6,
            client_read_rate: 1.0e9,
            transport: netsim::TransportProfile::verbs_qdr(),
            one_sided: true,
            kv_replication: 1,
            kv_op_timeout: std::time::Duration::from_secs(1),
            kv_retries: 3,
            kv_backoff: std::time::Duration::from_micros(100),
            scrub_interval: std::time::Duration::from_secs(1),
            scrub_batch: 32,
            rebalance_interval: std::time::Duration::from_millis(200),
            rebalance_batch: 64,
            bb_high_watermark: 0.75,
            bb_low_watermark: 0.5,
            trace_ops: false,
            flight_recorder_len: 0,
            bb_ack_mode: AckMode::FullR,
            bb_ack_ahead: 8,
            bb_admit_stream_bytes: 0,
            bb_admit_window: std::time::Duration::from_millis(50),
            bb_place_policy: PlacementPolicy::Hash,
            bb_place_interval: std::time::Duration::ZERO,
            bb_migrate_budget: 8 << 20,
        }
    }
}

/// A deployed burst buffer: KV servers + persistence manager wired between
/// compute nodes and a Lustre filesystem (plus a single-replica RAM-disk
/// HDFS overlay for scheme C).
pub struct BbDeployment {
    /// Deployment configuration.
    pub config: BbConfig,
    /// The verbs stack shared by clients and servers.
    pub stack: Rc<RdmaStack>,
    /// The seed KV servers (dedicated nodes). Frozen at deploy time;
    /// elastic joins/drains act on [`BbDeployment::membership`], which
    /// starts as exactly this set.
    pub kv_servers: Vec<Rc<KvServer>>,
    /// Epoch-versioned membership view shared by every client and the
    /// manager — the single source of truth for ring routing.
    membership: Rc<rkv::Membership>,
    /// Standby servers created by [`BbDeployment::standby_kv_server`]:
    /// alive on the fabric but not yet admitted to the ring, keyed by
    /// fabric node index so fault plans can name them.
    standby: std::cell::RefCell<std::collections::HashMap<u32, Rc<KvServer>>>,
    /// The persistent backing filesystem.
    pub lustre: Rc<LustreCluster>,
    /// Locality overlay (scheme C only).
    pub hdfs_local: Option<Rc<HdfsCluster>>,
    /// The namespace + persistence manager.
    pub manager: Rc<BbManager>,
    /// Read-path tier/batch counters, aggregated across every client of
    /// this deployment — live state in the simulation's metrics registry
    /// (`bb.read.*`), [`ReadStats`] is its frozen view.
    read: client::ReadCounters,
    /// Checksum-verification and repair counters (`bb.integrity.*`),
    /// shared by every reader, the flusher, and the scrubber.
    integrity: integrity::IntegrityCounters,
    /// Durability-ack counters (`bb.ack.*`), registered lazily on the
    /// first relaxed-mode write so the metric names stay out of default
    /// snapshots (byte-identity at defaults).
    ack: std::cell::RefCell<Option<Rc<client::AckCounters>>>,
}

impl BbDeployment {
    /// Deploy a burst buffer on `fabric`, backed by `lustre`. KV servers
    /// and the manager get fresh fabric nodes; `compute_nodes` are the
    /// nodes that will run clients (they host the scheme-C local overlay).
    pub fn deploy(
        fabric: &Rc<Fabric>,
        lustre: Rc<LustreCluster>,
        compute_nodes: &[NodeId],
        config: BbConfig,
    ) -> Rc<BbDeployment> {
        assert!(config.kv_servers > 0, "need at least one KV server");
        assert!(config.chunk_size > 0);
        assert!(config.flush_watermark > 0.0 && config.flush_watermark <= 1.0);
        assert!(
            config.bb_low_watermark <= config.bb_high_watermark,
            "pressure hysteresis needs low <= high"
        );
        assert!(config.bb_ack_ahead > 0, "ack-ahead window must be > 0");
        if config.trace_ops {
            fabric.sim().optrace().enable();
        }
        if config.flight_recorder_len > 0 {
            fabric.sim().flight().enable(config.flight_recorder_len);
        }
        let stack = RdmaStack::with_profile(Rc::clone(fabric), config.transport);
        let kv_servers: Vec<Rc<KvServer>> = (0..config.kv_servers)
            .map(|_| {
                let node = fabric.add_node();
                KvServer::new(
                    Rc::clone(&stack),
                    node,
                    KvServerConfig {
                        slab: SlabConfig {
                            mem_limit: config.kv_mem_per_server,
                            ..SlabConfig::default()
                        },
                        cores: config.kv_cores,
                        cq_batch: config.kv_cq_batch,
                        reclaim_idle: config.kv_reclaim_idle,
                        hot_replicas: config.kv_hot_replicas,
                        tenant_floor_frac: config.kv_tenant_floor,
                        tenant_rate: config.kv_tenant_rate,
                        tenant_burst: config.kv_tenant_burst,
                        // chunks arrive with their CRC32C in `flags`; the
                        // server rejects transfers whose payload no longer
                        // matches (BadDigest → client re-sends)
                        verify_set_crc: true,
                        ..KvServerConfig::default()
                    },
                )
            })
            .collect();
        let hdfs_local = match config.scheme {
            Scheme::HybridLocality => {
                assert!(
                    !compute_nodes.is_empty(),
                    "HybridLocality needs compute nodes for the local overlay"
                );
                Some(HdfsCluster::deploy(
                    fabric,
                    compute_nodes,
                    HdfsConfig {
                        replication: 1,
                        dn_disk: DiskKind::RamDisk,
                        dn_capacity: config.local_ramdisk,
                        ..HdfsConfig::default()
                    },
                ))
            }
            _ => None,
        };
        let vnodes = client::kv_client_config(&config).vnodes.max(1);
        let membership = rkv::Membership::new(kv_servers.clone(), vnodes);
        let manager_node = fabric.add_node();
        let manager = BbManager::spawn(
            Rc::clone(&stack),
            manager_node,
            Rc::clone(&membership),
            Rc::clone(&lustre),
            config,
        );
        let read = client::ReadCounters::register(fabric.sim().metrics());
        let integrity = integrity::IntegrityCounters::register(fabric.sim().metrics());
        let dep = Rc::new(BbDeployment {
            config,
            stack,
            kv_servers,
            membership,
            standby: std::cell::RefCell::new(std::collections::HashMap::new()),
            lustre,
            hdfs_local,
            manager,
            read,
            integrity,
            ack: std::cell::RefCell::new(None),
        });
        // scripted elasticity: AddServer promotes a pre-created standby
        // onto the ring, DrainServer takes a member off it; Weak capture
        // so the injector (sim-lifetime) never keeps the deployment alive
        let weak = Rc::downgrade(&dep);
        fabric.sim().faults().on_membership(move |ev| {
            let Some(dep) = weak.upgrade() else { return };
            match ev.change {
                simkit::MembershipChange::Join => {
                    dep.admit_kv_server(NodeId(ev.node));
                }
                simkit::MembershipChange::Drain => {
                    dep.drain_kv_server(NodeId(ev.node));
                }
            }
        });
        dep
    }

    /// The shared membership view clients and the manager route through.
    pub fn membership(&self) -> &Rc<rkv::Membership> {
        &self.membership
    }

    /// Create a standby KV server on a fresh fabric node: alive and
    /// serving its port, but not yet on the ring. Returns the server; a
    /// later [`BbDeployment::admit_kv_server`] (or a scripted
    /// [`simkit::FaultEvent::AddServer`] naming its node) puts it on the
    /// ring. Pre-creating standbys is what lets fault plans name join
    /// targets at plan-build time.
    pub fn standby_kv_server(&self) -> Rc<KvServer> {
        let fabric = self.stack.fabric();
        let node = fabric.add_node();
        let server = KvServer::new(
            Rc::clone(&self.stack),
            node,
            KvServerConfig {
                slab: SlabConfig {
                    mem_limit: self.config.kv_mem_per_server,
                    ..SlabConfig::default()
                },
                cores: self.config.kv_cores,
                cq_batch: self.config.kv_cq_batch,
                reclaim_idle: self.config.kv_reclaim_idle,
                hot_replicas: self.config.kv_hot_replicas,
                tenant_floor_frac: self.config.kv_tenant_floor,
                tenant_rate: self.config.kv_tenant_rate,
                tenant_burst: self.config.kv_tenant_burst,
                verify_set_crc: true,
                ..KvServerConfig::default()
            },
        );
        self.standby.borrow_mut().insert(node.0, Rc::clone(&server));
        server
    }

    /// Admit the server on `node` to the ring: a standby created by
    /// [`BbDeployment::standby_kv_server`], or a previously drained member
    /// rejoining. Bumps the membership epoch; the manager's background
    /// rebalancer migrates remapped chunks. `false` if `node` hosts no
    /// known server.
    pub fn admit_kv_server(&self, node: NodeId) -> bool {
        let standby = self.standby.borrow_mut().remove(&node.0);
        if let Some(server) = standby {
            self.membership.add_server(server);
            return true;
        }
        if let Some(idx) = self.membership.index_of(node) {
            let server = self.membership.server(idx);
            self.membership.add_server(server);
            return true;
        }
        false
    }

    /// Take the server on `node` off the ring. It keeps running and keeps
    /// its data until the rebalancer migrates the chunks away. `false` if
    /// the node is not an active member (or is the last one).
    pub fn drain_kv_server(&self, node: NodeId) -> bool {
        self.membership.drain_server(node)
    }

    /// Make a client on a compute node.
    pub fn client(self: &Rc<Self>, node: NodeId) -> Rc<BbClient> {
        BbClient::new(Rc::clone(self), node)
    }

    /// Aggregate KV memory budget.
    pub fn total_kv_memory(&self) -> u64 {
        self.config.kv_mem_per_server * self.kv_servers.len() as u64
    }

    /// Bytes currently held in the buffer layer (live KV items), over the
    /// full roster — drained servers still hold bytes until migration
    /// finishes, joined standbys start accumulating immediately.
    pub fn buffered_bytes(&self) -> u64 {
        (0..self.membership.roster_len())
            .map(|i| self.membership.server(i).store().stats().bytes)
            .sum()
    }

    /// Node-local storage in use (scheme C overlay; 0 for A/B) — the E9
    /// metric.
    pub fn local_storage_used(&self) -> u64 {
        self.hdfs_local
            .as_ref()
            .map(|h| h.local_storage_used())
            .unwrap_or(0)
    }

    /// Snapshot of the read-path counters accumulated since deployment
    /// (or the last [`BbDeployment::reset_read_stats`]).
    pub fn read_stats(&self) -> ReadStats {
        self.read.snapshot()
    }

    /// Zero the read-path counters (per-phase accounting in experiments).
    pub fn reset_read_stats(&self) {
        self.read.reset();
    }

    pub(crate) fn read_counters(&self) -> &client::ReadCounters {
        &self.read
    }

    pub(crate) fn integrity_counters(&self) -> &integrity::IntegrityCounters {
        &self.integrity
    }

    /// Locality write-time placement: choose and install a routing
    /// override for a brand-new chunk key so its replicas land on the
    /// ring servers topologically nearest the writer. A no-op unless
    /// [`BbConfig::bb_place_policy`] is [`PlacementPolicy::Locality`], or
    /// when the nearest servers are the hash owners anyway.
    pub(crate) fn install_locality_override(&self, from: NodeId, key: &[u8]) {
        if self.config.bb_place_policy != PlacementPolicy::Locality {
            return;
        }
        let r = self.config.kv_replication.max(1);
        if let Some(targets) =
            placement::locality_targets(self.stack.fabric(), &self.membership, from, key, r)
        {
            self.membership.set_override(key, targets);
        }
    }

    /// The `bb.ack.*` counters, registered on first use so the names are
    /// absent from snapshots of runs that never take a relaxed ack path.
    pub(crate) fn ack_counters(&self) -> Rc<client::AckCounters> {
        let mut slot = self.ack.borrow_mut();
        if slot.is_none() {
            *slot = Some(Rc::new(client::AckCounters::register(
                self.stack.fabric().sim().metrics(),
            )));
        }
        Rc::clone(slot.as_ref().unwrap())
    }

    /// Stop background loops (scheme-C overlay heartbeats, the integrity
    /// scrubber, the rebalancer, the placement optimizer) so simulations
    /// can quiesce.
    pub fn shutdown(&self) {
        if let Some(h) = &self.hdfs_local {
            h.shutdown();
        }
        self.manager.stop_scrub();
        self.manager.stop_rebalance();
        self.manager.stop_place();
    }
}

#[cfg(test)]
mod read_path_tests;
#[cfg(test)]
mod tests;
