//! End-to-end chunk integrity: CRC32C verification on every buffer read,
//! with replica failover and in-place repair.
//!
//! Every chunk sealed by a [`crate::BbWriter`] carries
//! `crc32c(key || data)` in the KV value's `flags` word and in the file's
//! chunk-CRC manifest ([`crate::manager::BbFileMeta::chunk_crcs`]). This
//! module is the read-side enforcement: [`get_verified`] never returns
//! bytes that fail their digest — a corrupt copy counts
//! `bb.integrity.checksum_fail`, the other replicas are consulted, and a
//! good copy found anywhere overwrites the bad replica in place
//! (`bb.integrity.repairs`). Only when *no* copy verifies does the chunk
//! fall through to the next tier (Lustre), where the manifest guards the
//! read again — so a completed read is byte-correct or loudly absent,
//! never silently wrong.

use rkv::client::ClientError;
use rkv::store::Value;
use rkv::KvClient;

/// CRC32C digest of a chunk as stored: covers the key so a value landing
/// under the wrong key also fails verification.
pub fn chunk_crc(key: &[u8], data: &[u8]) -> u32 {
    rkv::crc32c_pair(key, data)
}

/// `bb.integrity.*` counters (get-or-create: the deployment and the
/// manager share one set per simulation).
pub(crate) struct IntegrityCounters {
    /// Reads that failed checksum verification (per copy inspected).
    pub(crate) checksum_fail: simkit::telemetry::Counter,
    /// Corrupt replicas overwritten in place from a verified copy.
    pub(crate) repairs: simkit::telemetry::Counter,
}

impl IntegrityCounters {
    pub(crate) fn register(m: &simkit::telemetry::Registry) -> IntegrityCounters {
        IntegrityCounters {
            checksum_fail: m.counter("bb.integrity.checksum_fail"),
            repairs: m.counter("bb.integrity.repairs"),
        }
    }
}

/// Checksum-verified buffer GET. Walks the key's replicas in ring order;
/// each copy is verified against the digest in its `flags` word. A failed
/// verification is retried once against the same replica (the corruption
/// may have been in transit, not at rest) before the replica is marked
/// bad. The first good copy wins and is used to repair every bad replica
/// seen on the way. `Ok(None)` means no replica holds a *verifiable* copy
/// — the caller's next tier (Lustre, or a loud `DataUnavailable`) takes
/// over; corrupt bytes are never returned.
pub(crate) async fn get_verified(
    kv: &KvClient,
    counters: &IntegrityCounters,
    key: &[u8],
) -> Result<Option<Value>, ClientError> {
    enum Copy {
        Good(Value),
        Miss,
        Corrupt,
        Error(ClientError),
    }
    let replicas = kv.replicas(key)?;
    let n = replicas.len();
    let mut good: Option<Value> = None;
    let mut bad: Vec<usize> = Vec::new();
    let mut errors = 0usize;
    let mut first_err = None;
    for idx in replicas {
        // both attempts returning a bad digest means at-rest corruption
        let mut copy = Copy::Corrupt;
        for _attempt in 0..2 {
            match kv.get_from(idx, key).await {
                Ok(Some(v)) if chunk_crc(key, &v.data) == v.flags => {
                    copy = Copy::Good(v);
                    break;
                }
                Ok(Some(_)) => {
                    counters.checksum_fail.inc();
                    // retry once: transit corruption yields a clean copy
                    // on the next exchange, at-rest corruption does not
                }
                Ok(None) => {
                    copy = Copy::Miss;
                    break;
                }
                Err(e) => {
                    copy = Copy::Error(e);
                    break;
                }
            }
        }
        match copy {
            Copy::Good(v) => {
                good = Some(v);
                break;
            }
            Copy::Miss => {} // eviction is legal, not an integrity event
            Copy::Corrupt => bad.push(idx),
            Copy::Error(e) => {
                errors += 1;
                first_err.get_or_insert(e);
            }
        }
    }
    let Some(good) = good else {
        if errors == n {
            return Err(first_err.expect("n errors implies one recorded"));
        }
        return Ok(None);
    };
    // repair the divergent replicas in place from the verified copy; the
    // store carries any existing pin across the overwrite, so repairing
    // an unflushed chunk does not expose it to eviction
    for idx in bad {
        if kv
            .set_to(idx, key, good.data.clone(), good.flags, 0)
            .await
            .is_ok()
        {
            counters.repairs.inc();
        }
    }
    Ok(Some(good))
}
