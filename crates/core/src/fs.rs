//! One interface over the five systems under test: plain HDFS, plain
//! Lustre, and the burst buffer in each of its three schemes. The
//! MapReduce engine and every benchmark workload drive an [`AnyFs`], so a
//! system comparison is exactly the same code against different backends.

use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use netsim::NodeId;

use hdfs::{HdfsClient, HdfsError, HdfsReader, HdfsWriter};
use lustre::{LustreClient, LustreError, LustreFile};

use crate::client::{BbClient, BbError, BbReader, BbWriter};

/// Unified filesystem error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// HDFS failure.
    Hdfs(HdfsError),
    /// Lustre failure.
    Lustre(LustreError),
    /// Burst-buffer failure.
    Bb(BbError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Hdfs(e) => write!(f, "{e}"),
            FsError::Lustre(e) => write!(f, "{e}"),
            FsError::Bb(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for FsError {}

impl From<HdfsError> for FsError {
    fn from(e: HdfsError) -> Self {
        FsError::Hdfs(e)
    }
}
impl From<LustreError> for FsError {
    fn from(e: LustreError) -> Self {
        FsError::Lustre(e)
    }
}
impl From<BbError> for FsError {
    fn from(e: BbError) -> Self {
        FsError::Bb(e)
    }
}

/// A filesystem client on one compute node.
#[derive(Clone)]
pub enum AnyFs {
    /// Plain HDFS (triple-replicated local disks).
    Hdfs(HdfsClient),
    /// Plain Lustre (direct parallel-filesystem I/O).
    Lustre(LustreClient),
    /// The burst buffer (scheme per its deployment).
    Bb(Rc<BbClient>),
}

impl AnyFs {
    /// System label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            AnyFs::Hdfs(_) => "HDFS",
            AnyFs::Lustre(_) => "Lustre",
            AnyFs::Bb(c) => c.deployment().config.scheme.label(),
        }
    }

    /// The compute node this client runs on.
    pub fn node(&self) -> NodeId {
        match self {
            AnyFs::Hdfs(c) => c.node(),
            AnyFs::Lustre(c) => c.node(),
            AnyFs::Bb(c) => c.node(),
        }
    }

    /// Create a file for writing.
    pub async fn create(&self, path: &str) -> Result<AnyWriter, FsError> {
        Ok(match self {
            AnyFs::Hdfs(c) => AnyWriter::Hdfs(c.create(path).await?),
            AnyFs::Lustre(c) => AnyWriter::Lustre(c.create(path).await?),
            AnyFs::Bb(c) => AnyWriter::Bb(Box::new(c.create(path).await?)),
        })
    }

    /// Open a file for reading.
    pub async fn open(&self, path: &str) -> Result<AnyReader, FsError> {
        Ok(match self {
            AnyFs::Hdfs(c) => AnyReader::Hdfs(c.open(path).await?),
            AnyFs::Lustre(c) => AnyReader::Lustre(c.open(path).await?),
            AnyFs::Bb(c) => AnyReader::Bb(Box::new(c.open(path).await?)),
        })
    }

    /// Delete a file.
    pub async fn delete(&self, path: &str) -> Result<(), FsError> {
        match self {
            AnyFs::Hdfs(c) => c.delete(path).await?,
            AnyFs::Lustre(c) => c.unlink(path).await?,
            AnyFs::Bb(c) => c.delete(path).await?,
        }
        Ok(())
    }

    /// List paths under a prefix.
    pub async fn list(&self, prefix: &str) -> Result<Vec<String>, FsError> {
        Ok(match self {
            AnyFs::Hdfs(c) => c.list(prefix).await?,
            AnyFs::Lustre(c) => c.list(prefix).await?,
            AnyFs::Bb(c) => c.list(prefix).await?,
        })
    }

    /// Whether `path` exists.
    pub async fn exists(&self, path: &str) -> Result<bool, FsError> {
        Ok(match self {
            AnyFs::Hdfs(c) => c.exists(path).await?,
            AnyFs::Lustre(c) => c.exists(path).await?,
            AnyFs::Bb(c) => c.exists(path).await?,
        })
    }
}

/// A unified streaming writer.
pub enum AnyWriter {
    /// HDFS writer.
    Hdfs(HdfsWriter),
    /// Lustre file handle (sequential appends).
    Lustre(LustreFile),
    /// Burst-buffer writer.
    Bb(Box<BbWriter>),
}

impl AnyWriter {
    /// Append data to the stream.
    pub async fn append(&self, data: Bytes) -> Result<(), FsError> {
        match self {
            AnyWriter::Hdfs(w) => w.append(data).await?,
            AnyWriter::Lustre(w) => w.append(data).await?,
            AnyWriter::Bb(w) => w.append(data).await?,
        }
        Ok(())
    }

    /// Finish the file.
    pub async fn close(&self) -> Result<(), FsError> {
        match self {
            AnyWriter::Hdfs(w) => w.close().await?,
            AnyWriter::Lustre(w) => w.close().await?,
            AnyWriter::Bb(w) => w.close().await?,
        }
        Ok(())
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        match self {
            AnyWriter::Hdfs(w) => w.len(),
            AnyWriter::Lustre(w) => w.size(),
            AnyWriter::Bb(w) => w.len(),
        }
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A unified reader.
pub enum AnyReader {
    /// HDFS reader.
    Hdfs(HdfsReader),
    /// Lustre file handle.
    Lustre(LustreFile),
    /// Burst-buffer reader.
    Bb(Box<BbReader>),
}

impl AnyReader {
    /// File size.
    pub fn size(&self) -> u64 {
        match self {
            AnyReader::Hdfs(r) => r.size(),
            AnyReader::Lustre(r) => r.size(),
            AnyReader::Bb(r) => r.size(),
        }
    }

    /// Read `len` bytes at `offset`.
    pub async fn read_at(&self, offset: u64, len: u64) -> Result<Bytes, FsError> {
        Ok(match self {
            AnyReader::Hdfs(r) => r.read_at(offset, len).await?,
            AnyReader::Lustre(r) => r.read_at(offset, len).await?,
            AnyReader::Bb(r) => r.read_at(offset, len).await?,
        })
    }

    /// Read the whole file.
    pub async fn read_all(&self) -> Result<Bytes, FsError> {
        Ok(match self {
            AnyReader::Hdfs(r) => r.read_all().await?,
            AnyReader::Lustre(r) => r.read_all().await?,
            AnyReader::Bb(r) => r.read_all().await?,
        })
    }

    /// Replica locations per block/region for locality-aware task
    /// scheduling. Empty for systems with no node-local placement.
    pub fn locations(&self) -> Vec<Vec<NodeId>> {
        match self {
            AnyReader::Hdfs(r) => r.info().blocks.iter().map(|b| b.replicas.clone()).collect(),
            AnyReader::Lustre(_) => Vec::new(),
            AnyReader::Bb(r) => r.locations(),
        }
    }

    /// Size of one location region (block size), if meaningful.
    pub fn location_region(&self) -> Option<u64> {
        match self {
            AnyReader::Hdfs(r) => Some(r.info().block_size),
            AnyReader::Lustre(_) => None,
            AnyReader::Bb(r) => r.local_block_size(),
        }
    }
}
