//! Property tests for the pipelined tiered read path: the bytes returned
//! must be identical to the serial `read_window = 1` path across random
//! geometries, schemes, and tier mixes (warm buffer, cold Lustre, mixed
//! hit/miss), and the virtual-time behaviour must be deterministic —
//! replaying a scenario gives bit-identical read latencies.

use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use proptest::prelude::*;
use simkit::Sim;

use lustre::{LustreCluster, LustreConfig};

use crate::manager::chunk_key;
use crate::{BbConfig, BbDeployment, ReadStats, Scheme};

fn pattern(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i * 131 % 251) as u8).collect::<Vec<u8>>())
}

/// One read-path scenario, replayed identically under different windows.
#[derive(Debug, Clone)]
struct Scenario {
    scheme_idx: usize,
    chunk_size: u64,
    total: u64,
    /// Flush and drop every buffered chunk before reading (cold path).
    cold: bool,
    /// `> 0`: flush, then drop every Nth chunk (mixed hit/miss).
    evict_stride: u64,
    /// Raw (offset, len) seeds, reduced modulo the file size at runtime.
    reads: Vec<(u64, u64)>,
    readahead: bool,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        0usize..3,
        prop_oneof![Just(64u64 << 10), Just(128 << 10), Just(256 << 10)],
        (64u64 << 10)..(2 << 20),
        any::<bool>(),
        0u64..4,
        proptest::collection::vec((any::<u64>(), any::<u64>()), 1..4),
        any::<bool>(),
    )
        .prop_map(
            |(scheme_idx, chunk_size, total, cold, evict_stride, reads, readahead)| Scenario {
                scheme_idx,
                chunk_size,
                total,
                cold,
                evict_stride,
                reads,
                readahead,
            },
        )
}

/// Build a fresh deployment, write the file, apply the scenario's
/// eviction mix, then replay its reads. Returns the bytes of each read,
/// the virtual-time latency of each read, and the deployment's counters.
fn run_scenario(sc: &Scenario, read_window: usize) -> (Vec<Bytes>, Vec<Duration>, ReadStats) {
    let scheme = Scheme::all()[sc.scheme_idx % 3];
    let sim = Sim::new();
    let fabric = Fabric::new(sim.clone(), 2, NetConfig::default());
    let lustre = LustreCluster::deploy(&fabric, LustreConfig::default());
    let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
    let cfg = BbConfig {
        scheme,
        chunk_size: sc.chunk_size,
        read_window,
        readahead: sc.readahead,
        ..BbConfig::default()
    };
    let dep = BbDeployment::deploy(&fabric, lustre, &nodes, cfg);
    let client = dep.client(NodeId(0));
    let sc = sc.clone();
    let dep2 = Rc::clone(&dep);
    let (results, lats) = sim.block_on(async move {
        let data = pattern(sc.total as usize);
        let w = client.create("/prop").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        if sc.cold || sc.evict_stride > 0 {
            client.wait_flushed("/prop").await.unwrap();
            let chunks = sc.total.div_ceil(sc.chunk_size);
            for seq in 0..chunks {
                if sc.cold || seq % sc.evict_stride.max(1) == 0 {
                    // first created file always gets id 1
                    let _ = client.kv().delete(&chunk_key(1, seq)).await;
                }
            }
        }
        let rd = client.open("/prop").await.unwrap();
        let sim = dep2.stack.sim().clone();
        let mut results = Vec::new();
        let mut lats = Vec::new();
        for &(a, b) in &sc.reads {
            let off = a % sc.total;
            let len = 1 + b % (sc.total - off);
            let t0 = sim.now();
            results.push(rd.read_at(off, len).await.unwrap());
            lats.push(sim.now() - t0);
        }
        dep2.shutdown();
        (results, lats)
    });
    let stats = dep.read_stats();
    (results, lats, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pipelined reads (window 8) return byte-identical data to the
    /// serial window-1 path and to the ground-truth pattern, across
    /// random offsets, lengths, chunk sizes, schemes, and warm/cold/
    /// mixed buffer states.
    #[test]
    fn pipelined_reads_are_byte_identical(sc in scenario_strategy()) {
        let expect = pattern(sc.total as usize);
        let (pipelined, _, pstats) = run_scenario(&sc, 8);
        let (serial, _, sstats) = run_scenario(&sc, 1);
        for (i, &(a, b)) in sc.reads.iter().enumerate() {
            let off = (a % sc.total) as usize;
            let len = (1 + b % (sc.total - off as u64)) as usize;
            prop_assert_eq!(
                &pipelined[i][..],
                &expect[off..off + len],
                "pipelined read {} diverges from ground truth",
                i
            );
            prop_assert_eq!(
                &pipelined[i][..],
                &serial[i][..],
                "pipelined read {} diverges from the serial path",
                i
            );
        }
        // every returned chunk is attributed to exactly one tier
        prop_assert!(pstats.chunks_fetched() > 0);
        prop_assert!(sstats.chunks_fetched() > 0);
        // the serial path never issues batched GETs
        prop_assert_eq!(sstats.multi_gets, 0);
    }

    /// Replaying a scenario in a fresh simulation reproduces the exact
    /// virtual-time latency of every read and identical counters.
    #[test]
    fn read_latencies_are_deterministic(sc in scenario_strategy()) {
        for window in [1usize, 8] {
            let (bytes_a, lats_a, stats_a) = run_scenario(&sc, window);
            let (bytes_b, lats_b, stats_b) = run_scenario(&sc, window);
            prop_assert_eq!(&lats_a, &lats_b, "window {} latencies diverge", window);
            prop_assert_eq!(&stats_a, &stats_b, "window {} counters diverge", window);
            for (x, y) in bytes_a.iter().zip(&bytes_b) {
                prop_assert_eq!(&x[..], &y[..]);
            }
        }
    }
}

/// A warm multi-chunk sequential read completes strictly faster under
/// the pipelined window than chunk-at-a-time.
#[test]
fn pipelined_warm_read_beats_serial() {
    let sc = Scenario {
        scheme_idx: 0,
        chunk_size: 512 << 10,
        total: 8 << 20, // 16 chunks
        cold: false,
        evict_stride: 0,
        reads: vec![(0, u64::MAX)], // whole file
        readahead: true,
    };
    let (_, lats8, stats8) = run_scenario(&sc, 8);
    let (_, lats1, stats1) = run_scenario(&sc, 1);
    assert!(
        lats8[0] < lats1[0],
        "window 8 ({:?}) should beat window 1 ({:?})",
        lats8[0],
        lats1[0]
    );
    // the pipelined run batched its buffer GETs
    assert!(stats8.multi_gets > 0);
    assert!(stats8.avg_batch() > 1.0);
    assert_eq!(stats8.tier_buffer, 16);
    assert_eq!(stats1.tier_buffer, 16);
}

/// Cold reads coalesce contiguous buffer-miss runs: the Lustre tier
/// serves every chunk and the pipelined path still beats serial.
#[test]
fn pipelined_cold_read_coalesces_lustre_runs() {
    let sc = Scenario {
        scheme_idx: 0,
        chunk_size: 512 << 10,
        total: 8 << 20,
        cold: true,
        evict_stride: 0,
        reads: vec![(0, u64::MAX)],
        readahead: true,
    };
    let (_, lats8, stats8) = run_scenario(&sc, 8);
    let (_, lats1, stats1) = run_scenario(&sc, 1);
    assert_eq!(stats8.tier_lustre, 16);
    assert_eq!(stats1.tier_lustre, 16);
    assert!(
        lats8[0] <= lats1[0],
        "coalesced cold read ({:?}) should not lose to serial ({:?})",
        lats8[0],
        lats1[0]
    );
}
