//! Behavioural tests for the burst buffer: the three schemes' write/read
//! paths, durability, flow control, degraded modes, and the fault window.

use std::rc::Rc;

use bytes::Bytes;
use netsim::{Fabric, NetConfig, NodeId};
use simkit::Sim;

use lustre::{LustreCluster, LustreConfig};

use crate::manager::FileState;
use crate::{BbConfig, BbDeployment, BbError, Scheme};

struct Rig {
    sim: Sim,
    fabric: Rc<Fabric>,
    dep: Rc<BbDeployment>,
}

fn rig(compute: usize, scheme: Scheme) -> Rig {
    rig_with(
        compute,
        scheme,
        LustreConfig::default(),
        BbConfig::default(),
    )
}

fn rig_with(compute: usize, scheme: Scheme, lcfg: LustreConfig, bcfg: BbConfig) -> Rig {
    let sim = Sim::new();
    let fabric = Fabric::new(sim.clone(), compute, NetConfig::default());
    let lustre = LustreCluster::deploy(&fabric, lcfg);
    let nodes: Vec<NodeId> = (0..compute as u32).map(NodeId).collect();
    let dep = BbDeployment::deploy(&fabric, lustre, &nodes, BbConfig { scheme, ..bcfg });
    Rig { sim, fabric, dep }
}

fn pattern(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i * 131 % 251) as u8).collect::<Vec<u8>>())
}

#[test]
fn async_scheme_roundtrip_and_flush() {
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let data = pattern(3 << 20); // ~6 chunks
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/f1").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        // served from the buffer immediately
        let rd = client.open("/f1").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        // and eventually durable in Lustre
        let st = client.wait_flushed("/f1").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        assert_eq!(dep.lustre.stored_bytes(), 3 << 20);
        assert_eq!(dep.manager.stats().chunks_flushed, 6);
        dep.shutdown();
    });
}

#[test]
fn sync_scheme_is_durable_at_close() {
    let r = rig(2, Scheme::SyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let data = pattern(2 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/sync").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        // no waiting needed: write-through means durable now
        let rd = client.open("/sync").await.unwrap();
        assert_eq!(rd.state(), FileState::Flushed);
        assert_eq!(dep.lustre.stored_bytes(), 2 << 20);
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn hybrid_scheme_keeps_a_local_replica() {
    let r = rig(4, Scheme::HybridLocality);
    let client = r.dep.client(NodeId(1));
    let dep = Rc::clone(&r.dep);
    let data = pattern(2 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/hyb").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        // exactly one local replica exists (r=1 overlay on RAM disk)
        assert_eq!(dep.local_storage_used(), 2 << 20);
        let rd = client.open("/hyb").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        // locality info exposed for the scheduler
        assert!(!rd.locations().is_empty());
        client.wait_flushed("/hyb").await.unwrap();
        dep.shutdown();
    });
}

#[test]
fn async_and_sync_have_zero_local_storage() {
    for scheme in [Scheme::AsyncLustre, Scheme::SyncLustre] {
        let r = rig(2, scheme);
        let client = r.dep.client(NodeId(0));
        let dep = Rc::clone(&r.dep);
        r.sim.block_on(async move {
            let w = client.create("/nolocal").await.unwrap();
            w.append(pattern(1 << 20)).await.unwrap();
            w.close().await.unwrap();
            client.wait_flushed("/nolocal").await.ok();
            assert_eq!(dep.local_storage_used(), 0, "scheme {scheme:?}");
            dep.shutdown();
        });
    }
}

#[test]
fn read_falls_back_to_lustre_after_buffer_eviction() {
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let data = pattern(2 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/cold").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        client.wait_flushed("/cold").await.unwrap();
        // simulate LRU eviction: drop every chunk from the buffer
        for seq in 0..4u64 {
            let key = crate::manager::chunk_key(1, seq);
            client.kv().delete(&key).await.unwrap();
        }
        let rd = client.open("/cold").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn degraded_write_path_when_buffer_is_down() {
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let fabric = Rc::clone(&r.fabric);
    let data = pattern(1 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        // take every KV server down before writing
        for s in &dep.kv_servers {
            fabric.set_up(s.node(), false);
        }
        let w = client.create("/degraded").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/degraded").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        assert_eq!(dep.manager.stats().chunks_direct, 2);
        // reads skip the dead buffer and hit Lustre
        let rd = client.open("/degraded").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn async_fault_window_loses_unflushed_data() {
    // Slow Lustre (1 narrow OST) so the flush queue is deep at close time,
    // then kill the buffer: unflushed chunks are genuinely lost — the
    // documented AsyncLustre fault window, and the reason SyncLustre exists.
    let lcfg = LustreConfig {
        oss_count: 1,
        osts_per_oss: 1,
        stripe_count: 1,
        ost_rate: 2e6, // 2 MB/s: 8 MiB takes ~4 s to flush
        ..LustreConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, lcfg, BbConfig::default());
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let fabric = Rc::clone(&r.fabric);
    r.sim.block_on(async move {
        let w = client.create("/risky").await.unwrap();
        w.append(pattern(8 << 20)).await.unwrap();
        w.close().await.unwrap();
        // buffer dies right after close, flush barely started
        for s in &dep.kv_servers {
            fabric.set_up(s.node(), false);
        }
        let st = client.wait_flushed("/risky").await.unwrap();
        assert_eq!(st, FileState::Lost);
        assert!(dep.manager.stats().chunks_lost > 0);
        let rd = client.open("/risky").await.unwrap();
        match rd.read_all().await {
            Err(BbError::DataUnavailable { .. }) => {}
            other => panic!("expected DataUnavailable, got {other:?}"),
        }
        dep.shutdown();
    });
}

#[test]
fn inflight_flush_retries_across_buffer_outage() {
    // Regression: a flush whose KV GET hits an unreachable server must
    // retry after recovery instead of silently counting the chunk lost.
    // Slow Lustre keeps the flush queue deep across the outage window.
    let lcfg = LustreConfig {
        oss_count: 1,
        osts_per_oss: 1,
        stripe_count: 1,
        ost_rate: 2e6,
        ..LustreConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, lcfg, BbConfig::default());
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let fabric = Rc::clone(&r.fabric);
    let sim = r.sim.clone();
    r.sim.block_on(async move {
        let w = client.create("/outage").await.unwrap();
        w.append(pattern(8 << 20)).await.unwrap();
        w.close().await.unwrap();
        // transient outage right after close, healed 3 ms later — well
        // inside the flusher's bounded retry budget
        for s in &dep.kv_servers {
            fabric.set_up(s.node(), false);
        }
        sim.sleep(std::time::Duration::from_millis(3)).await;
        for s in &dep.kv_servers {
            fabric.set_up(s.node(), true);
        }
        let st = client.wait_flushed("/outage").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        let stats = dep.manager.stats();
        assert_eq!(stats.chunks_lost, 0, "outage flush silently dropped");
        assert_eq!(stats.chunks_flushed, 16);
        dep.shutdown();
    });
}

#[test]
fn sync_scheme_survives_buffer_death() {
    let r = rig(2, Scheme::SyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let fabric = Rc::clone(&r.fabric);
    let data = pattern(4 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/safe").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        for s in &dep.kv_servers {
            fabric.set_up(s.node(), false);
        }
        // every byte is already in Lustre: reads degrade, not fail
        let rd = client.open("/safe").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn watermark_backpressure_engages_without_data_loss() {
    // tiny buffer + slow Lustre: writers must stall on credits, and
    // everything still flushes correctly
    let lcfg = LustreConfig {
        oss_count: 1,
        osts_per_oss: 1,
        stripe_count: 1,
        ost_rate: 50e6,
        ..LustreConfig::default()
    };
    let bcfg = BbConfig {
        kv_servers: 1,
        kv_mem_per_server: 32 << 20,
        flush_watermark: 0.25,
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, lcfg, bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let data = pattern(48 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/wm").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/wm").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        let stats = dep.manager.stats();
        assert!(stats.watermark_stalls > 0, "watermark never engaged");
        assert_eq!(stats.chunks_lost, 0);
        let rd = client.open("/wm").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn delete_reaps_buffer_and_lustre() {
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    r.sim.block_on(async move {
        let w = client.create("/del").await.unwrap();
        w.append(pattern(1 << 20)).await.unwrap();
        w.close().await.unwrap();
        client.wait_flushed("/del").await.unwrap();
        assert!(dep.buffered_bytes() > 0);
        assert!(dep.lustre.stored_bytes() > 0);
        client.delete("/del").await.unwrap();
        assert_eq!(dep.buffered_bytes(), 0);
        assert_eq!(dep.lustre.stored_bytes(), 0);
        assert!(!client.exists("/del").await.unwrap());
        dep.shutdown();
    });
}

#[test]
fn namespace_list_exists_create_conflict() {
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    r.sim.block_on(async move {
        for p in ["/dir/a", "/dir/b", "/other/c"] {
            let w = client.create(p).await.unwrap();
            w.close().await.unwrap();
        }
        assert_eq!(client.list("/dir/").await.unwrap().len(), 2);
        assert!(client.exists("/dir/a").await.unwrap());
        match client.create("/dir/a").await.map(|_| ()) {
            Err(BbError::Exists(_)) => {}
            other => panic!("expected Exists, got {other:?}"),
        }
        dep.shutdown();
    });
}

#[test]
fn partial_chunk_tail_roundtrips() {
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let n = (512 << 10) * 3 + 7777;
    let data = pattern(n);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/tail").await.unwrap();
        let mut rest = data;
        while !rest.is_empty() {
            let take = rest.len().min(300_000);
            w.append(rest.split_to(take)).await.unwrap();
        }
        w.close().await.unwrap();
        let rd = client.open("/tail").await.unwrap();
        assert_eq!(rd.size(), n as u64);
        assert_eq!(rd.read_all().await.unwrap(), expect);
        client.wait_flushed("/tail").await.unwrap();
        // Lustre copy matches too
        let lf = client.open("/tail").await.unwrap();
        for seq in 0..4u64 {
            let key = crate::manager::chunk_key(1, seq);
            client.kv().delete(&key).await.unwrap();
        }
        assert_eq!(lf.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn populate_on_read_refills_the_buffer() {
    let bcfg = BbConfig {
        populate_on_read: true,
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, LustreConfig::default(), bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let data = pattern(1 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/rt").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        client.wait_flushed("/rt").await.unwrap();
        // evict everything, then read: the miss path should refill
        for seq in 0..2u64 {
            client
                .kv()
                .delete(&crate::manager::chunk_key(1, seq))
                .await
                .unwrap();
        }
        assert_eq!(dep.buffered_bytes(), 0);
        let rd = client.open("/rt").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
    // cache fills are spawned; drain the sim then check (stopping the
    // scrubber first so the drain quiesces)
    r.dep.shutdown();
    r.sim.run();
    assert!(
        r.dep.buffered_bytes() >= 1 << 20,
        "read-through did not repopulate the buffer"
    );
}

#[test]
fn many_concurrent_writers_round_trip() {
    let r = rig(8, Scheme::AsyncLustre);
    let sim = r.sim.clone();
    let mut handles = Vec::new();
    for n in 0..8u32 {
        let client = r.dep.client(NodeId(n));
        handles.push(sim.spawn(async move {
            let path = format!("/many/f{n}");
            let w = client.create(&path).await.unwrap();
            let data = pattern(3 << 20);
            w.append(data.clone()).await.unwrap();
            w.close().await.unwrap();
            client.wait_flushed(&path).await.unwrap();
            let rd = client.open(&path).await.unwrap();
            rd.read_all().await.unwrap() == data
        }));
    }
    r.dep.shutdown();
    sim.run();
    for h in handles {
        assert!(h.try_take().unwrap(), "a writer's data did not round-trip");
    }
    assert_eq!(r.dep.lustre.stored_bytes(), 8 * (3 << 20));
}

#[test]
fn unflushed_chunks_survive_memory_pressure() {
    // Regression for the async-scheme silent-loss hole: the KV tier is
    // filled well past its memory limit before the (slow) flush can
    // complete. Unflushed chunks are pinned against LRU eviction, so the
    // slab refuses new inserts instead of dropping dirty data; the writer
    // falls back to write-through for the overflow. Nothing may surface
    // as a clean NotFound at flush time.
    let lcfg = LustreConfig {
        oss_count: 1,
        osts_per_oss: 1,
        stripe_count: 1,
        ost_rate: 4e6, // 4 MB/s: the buffer fills long before the flush drains
        ..LustreConfig::default()
    };
    let bcfg = BbConfig {
        kv_servers: 1,
        kv_mem_per_server: 8 << 20,
        flush_watermark: 1.0,
        // park the pressure watermarks out of reach: this test exercises
        // the pin-vs-eviction line of defence, not graceful degradation
        bb_high_watermark: 8.0,
        bb_low_watermark: 1.0,
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, lcfg, bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let data = pattern(24 << 20); // 3x the buffer
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/pinned").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/pinned").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        let stats = dep.manager.stats();
        assert_eq!(
            stats.chunks_lost, 0,
            "an unflushed chunk was silently evicted under memory pressure"
        );
        // the overflow had to go somewhere: write-through, not loss
        assert!(
            stats.chunks_direct > 0,
            "slab overflow never hit the direct path"
        );
        let rd = client.open("/pinned").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn pressure_watermarks_degrade_to_writethrough_with_hysteresis() {
    // Crossing the high watermark must flip the write path to
    // write-through (bb.pressure.enter, bb.pressure.writethrough); once
    // the flusher drains below the low watermark the buffer re-engages
    // (bb.pressure.exit). No bytes are lost either way.
    let lcfg = LustreConfig {
        oss_count: 1,
        osts_per_oss: 1,
        stripe_count: 1,
        ost_rate: 8e6,
        ..LustreConfig::default()
    };
    let bcfg = BbConfig {
        kv_servers: 1,
        kv_mem_per_server: 32 << 20,
        flush_watermark: 0.95, // keep credit stalls out of the way
        bb_high_watermark: 0.5,
        bb_low_watermark: 0.25,
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, lcfg, bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let data = pattern(48 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/hyst").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/hyst").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        assert_eq!(dep.manager.stats().chunks_lost, 0);
        let rd = client.open("/hyst").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
    let m = r.sim.metrics().snapshot();
    assert!(
        m.counter("bb.pressure.enter") >= 1,
        "pressure never engaged"
    );
    assert!(
        m.counter("bb.pressure.writethrough") >= 1,
        "pressure engaged but no chunk took the write-through path"
    );
    assert!(
        m.counter("bb.pressure.exit") >= 1,
        "pressure never released after the flusher drained"
    );
}

#[test]
fn scrubber_repairs_corrupted_replicas_in_place() {
    // Corrupt every buffered copy of a flushed file, then let the
    // background scrubber run: it must detect the damage via checksums
    // and rewrite good bytes (sourced from Lustre) over the bad copies,
    // leaving nothing unrepairable and the buffer serving correct data.
    let bcfg = BbConfig {
        kv_servers: 2,
        kv_replication: 2,
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, LustreConfig::default(), bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let sim = r.sim.clone();
    let data = pattern(2 << 20); // 4 chunks
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/scrub").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        client.wait_flushed("/scrub").await.unwrap();
        // flip one byte in every resident value on every server
        let mut hit = 0;
        for s in &dep.kv_servers {
            hit += s.store().corrupt_resident(|len| Some((len / 2, 0x40)));
        }
        assert_eq!(hit, 8, "expected 4 chunks x 2 replicas corrupted");
        // several scrub intervals: one batch covers all 4 resident chunks
        sim.sleep(std::time::Duration::from_secs(4)).await;
        let m = sim.metrics().snapshot();
        assert!(
            m.counter("bb.integrity.checksum_fail") >= 8,
            "scrubber did not notice the corruption"
        );
        assert_eq!(
            m.counter("bb.scrub.repaired"),
            8,
            "every corrupted copy should be rewritten in place"
        );
        assert_eq!(m.counter("bb.scrub.unrepairable"), 0);
        // the buffer itself now serves good bytes again
        let rd = client.open("/scrub").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
    assert_eq!(
        r.dep.read_stats().tier_buffer,
        4,
        "repaired chunks should be served from the buffer, not Lustre"
    );
}

#[test]
fn buffered_writes_beat_hdfs_style_persistence() {
    // sanity on the headline direction: an async-buffered write should be
    // far faster than synchronous write-through (which pays Lustre inline)
    fn write_time(scheme: Scheme) -> f64 {
        let r = rig(2, scheme);
        let client = r.dep.client(NodeId(0));
        let dep = Rc::clone(&r.dep);
        let s = r.sim.clone();
        r.sim.block_on(async move {
            let w = client.create("/t").await.unwrap();
            let t0 = s.now();
            w.append(pattern(64 << 20)).await.unwrap();
            w.close().await.unwrap();
            let dt = (s.now() - t0).as_secs_f64();
            client.wait_flushed("/t").await.ok();
            dep.shutdown();
            dt
        })
    }
    let async_t = write_time(Scheme::AsyncLustre);
    let sync_t = write_time(Scheme::SyncLustre);
    assert!(
        async_t < sync_t,
        "async {async_t:.4}s should beat sync {sync_t:.4}s"
    );
}

#[test]
fn drained_server_hands_off_pinned_chunks_before_leaving() {
    // A server holding the only pinned (unflushed) replica of a chunk is
    // drained mid-flush. The rebalancer must copy the chunk to the
    // surviving owner, carry the pin, and empty the drained server —
    // all before the slow flush completes — with no acknowledged bytes
    // lost and no Lustre fallback available (the file is not flushed).
    let lcfg = LustreConfig {
        oss_count: 1,
        osts_per_oss: 1,
        stripe_count: 1,
        ost_rate: 1e6, // 1 MB/s: 4 MiB stays unflushed for ~4 s
        ..LustreConfig::default()
    };
    let bcfg = BbConfig {
        kv_servers: 2,
        kv_replication: 1, // single replica: the drained copy is the only one
        rebalance_interval: std::time::Duration::from_millis(50),
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, lcfg, bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let sim = r.sim.clone();
    let data = pattern(4 << 20); // 8 chunks spread over both servers
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/drainpin").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        // every chunk is pinned in the buffer; pick a victim that holds some
        let victim = dep
            .kv_servers
            .iter()
            .find(|s| s.store().stats().items > 0)
            .expect("some server holds chunks")
            .node();
        let before: u64 = dep.kv_servers.iter().map(|s| s.store().stats().items).sum();
        assert!(dep.drain_kv_server(victim));
        // a few rebalance intervals: one epoch diff + one batch moves all
        sim.sleep(std::time::Duration::from_millis(500)).await;
        let survivor = dep.kv_servers.iter().find(|s| s.node() != victim).unwrap();
        let drained = dep.kv_servers.iter().find(|s| s.node() == victim).unwrap();
        assert_eq!(
            drained.store().stats().items,
            0,
            "drained server must hand off every chunk before leaving"
        );
        let sstats = survivor.store().stats();
        assert_eq!(sstats.items, before, "no chunk lost in the handoff");
        assert!(
            sstats.pinned_items > 0,
            "unflushed chunks must stay pinned on their new owner"
        );
        let m = sim.metrics().snapshot();
        assert!(m.counter("bb.rebalance.moved") > 0);
        assert_eq!(m.counter("bb.rebalance.verify_fail"), 0);
        // the flush still completes and the bytes are intact
        let st = client.wait_flushed("/drainpin").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        let rd = client.open("/drainpin").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

// --- durability ack modes + traffic-aware admission -------------------

#[test]
fn ack_mode_quorum_contract() {
    use crate::AckMode;
    // full_r always waits for every configured replica
    for r in 1..=4 {
        assert_eq!(AckMode::FullR.quorum(r), r);
    }
    // local_only acks on the primary alone, regardless of r
    for r in 1..=4 {
        assert_eq!(AckMode::LocalOnly.quorum(r), 1);
    }
    // local_plus_one wants a second copy when one exists
    assert_eq!(AckMode::LocalPlusOne.quorum(1), 1);
    assert_eq!(AckMode::LocalPlusOne.quorum(2), 2);
    assert_eq!(AckMode::LocalPlusOne.quorum(4), 2);
    // r = 0 is clamped, never a zero quorum
    for mode in AckMode::all() {
        assert!(mode.quorum(0) >= 1);
    }
    // full_r is the default: the seed ack path, byte-identical behaviour
    assert_eq!(BbConfig::default().bb_ack_mode, AckMode::FullR);
    assert_eq!(BbConfig::default().bb_admit_stream_bytes, 0);
}

#[test]
fn per_file_ack_mode_overrides_config_default() {
    use crate::client::WriteOptions;
    use crate::AckMode;
    // config default is full_r (seed path); one file opts into local_only
    let bcfg = BbConfig {
        kv_replication: 2,
        kv_servers: 3,
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, LustreConfig::default(), bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let sim = r.sim.clone();
    let data = pattern(2 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client
            .create_with(
                "/relaxed",
                WriteOptions {
                    ack_mode: Some(AckMode::LocalOnly),
                },
            )
            .await
            .unwrap();
        w.append(data.clone()).await.unwrap();
        w.close().await.unwrap();
        // the relaxed quorum path acked before all replicas were durable
        let m = sim.metrics().snapshot();
        assert!(
            m.counter("bb.ack.quorum_acks") > 0,
            "relaxed path not taken"
        );
        assert_eq!(m.counter("bb.ack.downgrade"), 0);
        // a default-mode file on the same deployment rides the seed path
        let acks_before = m.counter("bb.ack.quorum_acks");
        let w2 = client.create("/strict").await.unwrap();
        w2.append(data).await.unwrap();
        w2.close().await.unwrap();
        let m = sim.metrics().snapshot();
        assert_eq!(
            m.counter("bb.ack.quorum_acks"),
            acks_before,
            "full_r files must not take the relaxed ack path"
        );
        // relaxed acks cost no durability once replication catches up
        let st = client.wait_flushed("/relaxed").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        let rd = client.open("/relaxed").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn buffered_writeback_corruption_counts_lost_not_flushed() {
    // Regression: the flusher must verify the Lustre commit checksum
    // BEFORE counting a chunk flushed. With every commit corrupted, no
    // chunk may count as flushed and the file must surface as Lost.
    use simkit::{FaultEvent, FaultPlan};
    let r = rig(2, Scheme::AsyncLustre);
    let mut plan = FaultPlan::new(7);
    for oss in &r.dep.lustre.osses {
        plan = plan.at(
            std::time::Duration::ZERO,
            FaultEvent::CorruptCommit {
                node: oss.node().0,
                p: 1.0,
            },
        );
    }
    r.sim.install_faults(plan);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let sim = r.sim.clone();
    r.sim.block_on(async move {
        let w = client.create("/torn").await.unwrap();
        w.append(pattern(2 << 20)).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/torn").await.unwrap();
        assert_eq!(st, FileState::Lost, "corrupt write-back must not flush");
        let stats = dep.manager.stats();
        assert_eq!(
            stats.chunks_flushed, 0,
            "no chunk may count flushed before its commit CRC verifies"
        );
        assert_eq!(stats.bytes_flushed, 0);
        assert!(stats.chunks_lost > 0);
        let m = sim.metrics().snapshot();
        assert!(m.counter("bb.integrity.checksum_fail") > 0);
        dep.shutdown();
    });
}

#[test]
fn direct_writeback_corruption_counts_lost_not_direct() {
    // Same contract on the degraded write-through path: a corrupt commit
    // retries, then counts lost — never `chunks_direct`.
    use simkit::{FaultEvent, FaultPlan};
    let r = rig(2, Scheme::AsyncLustre);
    let mut plan = FaultPlan::new(11);
    for oss in &r.dep.lustre.osses {
        plan = plan.at(
            std::time::Duration::ZERO,
            FaultEvent::CorruptCommit {
                node: oss.node().0,
                p: 1.0,
            },
        );
    }
    r.sim.install_faults(plan);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let fabric = Rc::clone(&r.fabric);
    let sim = r.sim.clone();
    r.sim.block_on(async move {
        for s in &dep.kv_servers {
            fabric.set_up(s.node(), false);
        }
        let w = client.create("/torn-direct").await.unwrap();
        w.append(pattern(1 << 20)).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/torn-direct").await.unwrap();
        assert_eq!(st, FileState::Lost);
        let stats = dep.manager.stats();
        assert_eq!(stats.chunks_direct, 0, "corrupt commits must not count");
        assert!(stats.chunks_lost > 0);
        let m = sim.metrics().snapshot();
        assert!(m.counter("bb.integrity.checksum_fail") > 0);
        dep.shutdown();
    });
}

#[test]
fn classifier_routes_long_stream_to_writethrough() {
    // A long sequential writer crosses `bb_admit_stream_bytes` within
    // one window and is routed to Lustre write-through; the data stays
    // byte-identical and the file still reaches Flushed.
    let bcfg = BbConfig {
        bb_admit_stream_bytes: 2 << 20,
        bb_admit_window: std::time::Duration::from_secs(5),
        ..BbConfig::default()
    };
    let r = rig_with(2, Scheme::AsyncLustre, LustreConfig::default(), bcfg);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let sim = r.sim.clone();
    let data = pattern(8 << 20);
    let expect = data.clone();
    r.sim.block_on(async move {
        let w = client.create("/stream").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/stream").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        let m = sim.metrics().snapshot();
        assert_eq!(m.counter("bb.admit.stream_detected"), 1);
        assert!(m.counter("bb.admit.writethrough_chunks") > 0);
        // chunks past the detection point bypassed the buffer entirely
        let stats = dep.manager.stats();
        assert!(stats.chunks_direct > 0);
        let rd = client.open("/stream").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        dep.shutdown();
    });
}

#[test]
fn classifier_off_registers_no_admission_metrics() {
    // Defaults-off contract: with `bb_admit_stream_bytes = 0` (default)
    // and the default full_r ack mode, no `bb.admit.*` or `bb.ack.*`
    // metric may even be registered — the telemetry stream is
    // byte-identical to the seed.
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let sim = r.sim.clone();
    r.sim.block_on(async move {
        let w = client.create("/seed").await.unwrap();
        w.append(pattern(8 << 20)).await.unwrap();
        w.close().await.unwrap();
        let st = client.wait_flushed("/seed").await.unwrap();
        assert_eq!(st, FileState::Flushed);
        let m = sim.metrics().snapshot();
        for name in m.names() {
            assert!(
                !name.starts_with("bb.admit.") && !name.starts_with("bb.ack."),
                "defaults-off run registered {name}"
            );
        }
        dep.shutdown();
    });
}

#[test]
fn placement_engine_moves_hot_chunks_toward_remote_readers() {
    // Geo-stretched topology, geo size 8 (nodes_per_rack 2 × racks_per_zone
    // 2 × zones_per_geo 2). Everything deployed up front — writer, Lustre,
    // the seed KV server, the manager — sits in geo 0; a standby server and
    // the reader land in geo 1. Locality write placement keeps new chunks
    // next to the writer; the optimizer must then migrate them to the
    // geo-1 server once the remote reader's telemetry accumulates.
    let sim = Sim::new();
    let net = NetConfig {
        nodes_per_rack: 2,
        racks_per_zone: 2,
        zones_per_geo: 2,
        rack_latency: std::time::Duration::from_micros(5),
        zone_latency: std::time::Duration::from_micros(20),
        geo_latency: std::time::Duration::from_millis(2),
        ..NetConfig::default()
    };
    let fabric = Fabric::new(sim.clone(), 2, net);
    let lustre = LustreCluster::deploy(
        &fabric,
        LustreConfig {
            oss_count: 1,
            osts_per_oss: 1,
            ..LustreConfig::default()
        },
    );
    let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
    let dep = BbDeployment::deploy(
        &fabric,
        lustre,
        &nodes,
        BbConfig {
            kv_servers: 1,
            bb_place_policy: crate::PlacementPolicy::Locality,
            bb_place_interval: std::time::Duration::from_millis(50),
            ..BbConfig::default()
        },
    );
    assert!(dep.manager.node().0 < 8, "infra must fit in geo 0");
    while fabric.len() < 8 {
        fabric.add_node();
    }
    let standby = dep.standby_kv_server();
    assert_eq!(standby.node().0, 8, "standby must open geo 1");
    let reader_node = fabric.add_node(); // node 9, geo 1
    let data = pattern(2 << 20); // 4 chunks
    let expect = data.clone();
    let dep2 = Rc::clone(&dep);
    let sim2 = sim.clone();
    sim.block_on(async move {
        assert!(dep2.admit_kv_server(standby.node()));
        let wclient = dep2.client(NodeId(0));
        let w = wclient.create("/hot").await.unwrap();
        w.append(data).await.unwrap();
        w.close().await.unwrap();
        // locality placement: every chunk routes to the geo-0 server
        for seq in 0..4u64 {
            assert_eq!(
                dep2.membership().route(&crate::manager::chunk_key(1, seq)),
                Some(0),
                "chunk {seq} should start on the writer-side server"
            );
        }
        wclient.wait_flushed("/hot").await.unwrap();
        // a hot remote reader in geo 1
        let rclient = dep2.client(reader_node);
        for _ in 0..4 {
            let rd = rclient.open("/hot").await.unwrap();
            assert_eq!(rd.read_all().await.unwrap(), expect);
            sim2.sleep(std::time::Duration::from_millis(100)).await;
        }
        sim2.sleep(std::time::Duration::from_secs(2)).await;
        // the optimizer moved every chunk to the reader-side server
        for seq in 0..4u64 {
            assert_eq!(
                dep2.membership().route(&crate::manager::chunk_key(1, seq)),
                Some(1),
                "chunk {seq} should have migrated toward the reader"
            );
        }
        assert_eq!(dep2.manager.place_backlog(), 0);
        let rd = rclient.open("/hot").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap(), expect);
        let m = sim2.metrics().snapshot();
        assert!(m.counter("bb.place.decisions") >= 4);
        assert!(m.counter("bb.place.migrations") >= 4);
        assert!(m.counter("bb.place.bytes") >= 2 << 20);
        assert!(m.counter("bb.place.cost_after") < m.counter("bb.place.cost_before"));
        assert_eq!(m.counter("bb.integrity.checksum_fail"), 0);
        assert_eq!(m.counter("bb.scrub.unrepairable"), 0);
        dep2.shutdown();
    });
}

#[test]
fn placement_off_registers_no_metrics_and_installs_no_overrides() {
    // Defaults-off contract: with the hash policy and a zero optimizer
    // interval, no `bb.place.*` name may even be registered and the
    // membership view carries no overrides.
    let r = rig(2, Scheme::AsyncLustre);
    let client = r.dep.client(NodeId(0));
    let dep = Rc::clone(&r.dep);
    let sim = r.sim.clone();
    r.sim.block_on(async move {
        let w = client.create("/seed").await.unwrap();
        w.append(pattern(4 << 20)).await.unwrap();
        w.close().await.unwrap();
        let rd = client.open("/seed").await.unwrap();
        assert_eq!(rd.read_all().await.unwrap().len(), 4 << 20);
        let m = sim.metrics().snapshot();
        for name in m.names() {
            assert!(
                !name.starts_with("bb.place."),
                "defaults-off run registered {name}"
            );
        }
        assert_eq!(dep.membership().overrides_len(), 0);
        dep.shutdown();
    });
}
