//! Offline shim for `parking_lot`: `Mutex`/`RwLock` with the non-poisoning
//! API, backed by `std::sync`. Poisoned locks are recovered transparently,
//! matching `parking_lot`'s poison-free semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with `parking_lot`'s `lock() -> Guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never returns a poison error).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
