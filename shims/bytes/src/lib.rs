//! Offline shim for the `bytes` crate: the API subset this workspace uses,
//! implemented over `Arc<[u8]>`. Cheap clones and zero-copy `slice`/`split_to`
//! are preserved; the rest favours simplicity over micro-optimisation.
//!
//! Build containers for this repo have no crates.io access, so the real
//! `bytes` cannot be fetched; this path crate stands in for it (see
//! `shims/README.md`).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer borrowing a static slice (copied here; the shim has one repr).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Zero-copy sub-range view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        let front = self.slice(..at);
        self.start += at;
        front
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl Eq for Bytes {}
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}
impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! eq_via_slice {
    ($($other:ty),*) => {$(
        impl PartialEq<$other> for Bytes {
            fn eq(&self, other: &$other) -> bool {
                self.as_ref() == AsRef::<[u8]>::as_ref(other)
            }
        }
        impl PartialEq<Bytes> for $other {
            fn eq(&self, other: &Bytes) -> bool {
                AsRef::<[u8]>::as_ref(self) == other.as_ref()
            }
        }
    )*};
}
eq_via_slice!([u8], Vec<u8>, str);

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<'a> PartialEq<&'a [u8]> for Bytes {
    fn eq(&self, other: &&'a [u8]) -> bool {
        self.as_ref() == *other
    }
}
impl<'a> PartialEq<&'a str> for Bytes {
    fn eq(&self, other: &&'a str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

/// Growable byte buffer; freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            v: Vec::with_capacity(cap),
        }
    }

    /// `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { v: vec![0; len] }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.v)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.v.extend_from_slice(src);
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        let rest = self.v.split_off(at);
        BytesMut {
            v: std::mem::replace(&mut self.v, rest),
        }
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.v.reserve(additional);
    }

    /// Resize, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.v.resize(new_len, value);
    }

    /// Shorten to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.v.truncate(len);
    }

    /// Remove all bytes.
    pub fn clear(&mut self) {
        self.v.clear();
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.v
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.v
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.v
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", self.v)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { v }
    }
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Read `len` bytes out as a `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.v
    }
    fn advance(&mut self, cnt: usize) {
        self.v.drain(..cnt);
    }
}

/// Write cursor over a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.v.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(mid, [2, 3, 4]);
        let mut rest = b.clone();
        let front = rest.split_to(2);
        assert_eq!(front, [1, 2]);
        assert_eq!(rest, [3, 4, 5]);
    }

    #[test]
    fn buf_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(42);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.copy_to_bytes(3), b"xyz"[..]);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn bytes_mut_split_to_keeps_tail() {
        let mut m = BytesMut::from(vec![1, 2, 3, 4]);
        let head = m.split_to(1);
        assert_eq!(&head[..], &[1]);
        assert_eq!(&m[..], &[2, 3, 4]);
    }
}
