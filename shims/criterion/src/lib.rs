//! Offline shim for `criterion`: the macro/struct surface the workspace's
//! benches use, over a simple wall-clock loop. No statistics beyond the
//! mean; good enough to rank configurations and spot regressions by eye.
//!
//! Set `CRITERION_JSON=<path>` to also dump `[{id, mean_ns, iters, ...}]`
//! for committing a baseline (used by `BENCH_readpath.json`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name/param`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Declared throughput denominator, if any.
    pub throughput: Option<Throughput>,
}

/// Work per iteration, for MB/s / Melem/s style reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark id: a name plus an optional parameter.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Harness entry point: collects results, prints them, optionally dumps JSON.
pub struct Criterion {
    sample_size: u64,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Iterations to target per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim does not warm up separately.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let rows: Vec<String> = self
                .results
                .iter()
                .map(|r| {
                    let (tp_kind, tp_val) = match r.throughput {
                        Some(Throughput::Bytes(b)) => ("bytes", b),
                        Some(Throughput::Elements(e)) => ("elements", e),
                        None => ("none", 0),
                    };
                    format!(
                        "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \"throughput_kind\": \"{}\", \"throughput_per_iter\": {}}}",
                        r.id, r.mean_ns, r.iters, tp_kind, tp_val
                    )
                })
                .collect();
            let doc = format!("[\n{}\n]\n", rows.join(",\n"));
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            }
        }
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().full);
        self.run(id, |b| f(b));
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.full);
        self.run(id, |b| f(b, input));
    }

    /// Finish the group (no-op; results are flushed by `Criterion`).
    pub fn finish(self) {}

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            budget: self.criterion.measurement_time,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let iters = bencher.iters.max(1);
        let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.1} MB/s", b as f64 / mean_ns * 1e9 / 1e6)
            }
            Some(Throughput::Elements(e)) => {
                format!("  {:>10.2} Melem/s", e as f64 / mean_ns * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!("bench {id:<48} {mean_ns:>14.1} ns/iter{rate}");
        self.criterion.results.push(BenchResult {
            id,
            mean_ns,
            iters,
            throughput: self.throughput,
        });
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: u64,
    budget: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f` repeatedly until the sample count or time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if iters >= self.sample_size || start.elapsed() >= self.budget {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Declare a set of benchmark functions, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
