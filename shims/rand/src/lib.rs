//! Offline shim for `rand` 0.8: the `Rng`/`RngCore`/`SeedableRng` trait
//! surface this workspace uses, with `rngs::SmallRng` implemented as
//! xoshiro256++ seeded through SplitMix64. The stream differs from upstream
//! `rand`, which is fine here: the simulator only requires that the stream be
//! a deterministic function of the seed, not that it match any particular
//! generator.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value inside the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let raw = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&raw[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_not_constant() {
        let mut r = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
