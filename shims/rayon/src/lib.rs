//! Offline shim for `rayon`: `into_par_iter`/`par_iter` return the ordinary
//! sequential iterators, so every sweep runs in deterministic order on one
//! thread. The bench harness only uses rayon to fan out independent
//! simulator cells; results are identical either way, just slower to
//! produce. Containers for this repo cannot fetch the real crate.

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// "Parallel" iteration — sequential here.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: 'data;
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// "Parallel" iteration over references — sequential here.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// What `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v = vec![3, 1, 2];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let owned: Vec<i32> = v.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(owned, vec![4, 2, 3]);
    }

    #[test]
    fn ranges_fan_out() {
        let squares: Vec<u64> = (0u64..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }
}
