//! Offline shim for `proptest`: the strategy combinators and macros this
//! workspace's property tests use, over a seeded SplitMix64 generator.
//! No shrinking — a failing case panics with the generated inputs in the
//! assertion message (inputs are reproducible: case `i` always uses the
//! same deterministic seed). `*.proptest-regressions` files are ignored.

/// Deterministic generator and run configuration.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 stream used to generate inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed stream for case number `case` (fully deterministic).
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(u64::from(case) + 1),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

/// Strategies: value generators composable with `prop_map` et al.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing `pred` (bounded retry).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, pred }
        }

        /// Type-erase for heterogeneous collections (e.g. `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of a strategy.
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the alternatives; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = self.clone().into_inner();
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
        (A, B, C, D, E, F, G, H, I),
        (A, B, C, D, E, F, G, H, I, J)
    );

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generate any value of `T` (uniform over the representation).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length constraint for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange { lo, hi: hi + 1 }
        }
    }

    /// `Vec` of values drawn from `element`, with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Build a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One random property case: assert a condition, reporting the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declare property test functions (subset of proptest's grammar:
/// `name(pat in strategy, ...)` with an optional leading
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        // callers write `#[test]` themselves (real-proptest idiom), so the
        // expansion only passes attributes through
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
}

/// The glob import property tests start with.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, v in collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            (0u32..4).prop_map(|n| n * 2),
            (10u32..12).prop_map(|n| n + 1),
        ]) {
            prop_assert!(y < 8 || (11..=12).contains(&y), "y = {y}");
        }
    }
}
